/**
 * @file
 * Livelock escalation: a policy wrapper that forces provably safe
 * quanta around the failing region.
 *
 * When the supervisor sees the same quantum fail repeatedly (restore →
 * replay → fail again at the same spot), retrying harder cannot help:
 * the failure is a deterministic function of the schedule. The
 * escalation step reruns with the adaptive policy clamped to the
 * conservative Q <= T bound (the network's minimum latency — the
 * paper's "only deterministically correct execution") for a window of
 * quanta around the failure point, which removes stragglers and
 * speculative lateness exactly where the run keeps dying while keeping
 * the rest of the run adaptive.
 *
 * The wrapper changes the policy name (and therefore the checkpoint
 * config fingerprint), so escalated attempts never restore from or
 * write checkpoints — they trade bit-identity with the clean run for
 * forward progress, and the incident log records that trade.
 */

#ifndef AQSIM_SUPERVISE_ESCALATION_HH
#define AQSIM_SUPERVISE_ESCALATION_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/types.hh"
#include "core/quantum_policy.hh"

namespace aqsim::supervise
{

/**
 * Clamps an inner policy to a safe quantum bound inside a window of
 * quantum indices around a failure point; transparent outside it.
 */
class ConservativeWindowPolicy : public core::QuantumPolicy
{
  public:
    /**
     * @param inner policy to wrap (adaptation keeps running even
     *        inside the window, so exiting it resumes seamlessly)
     * @param safe_quantum the conservative bound (network min latency)
     * @param fail_quantum quantum index the run kept failing at
     * @param window_quanta half-width of the guarded index window
     */
    ConservativeWindowPolicy(std::unique_ptr<core::QuantumPolicy> inner,
                             Tick safe_quantum,
                             std::uint64_t fail_quantum,
                             std::uint64_t window_quanta);

    Tick initialQuantum() const override;
    Tick next(std::uint64_t packets_last_quantum) override;
    void reset() override;
    /** "guard:" + inner name: escalated runs fingerprint differently. */
    std::string name() const override;
    std::unique_ptr<core::QuantumPolicy> clone() const override;
    void serialize(ckpt::Writer &w) const override;
    void deserialize(ckpt::Reader &r) override;

    /** @return true if quantum @p index falls in the guarded window. */
    bool guarded(std::uint64_t index) const;

  private:
    std::unique_ptr<core::QuantumPolicy> inner_;
    Tick safe_;
    std::uint64_t failQuantum_;
    std::uint64_t window_;
    /** Index of the next quantum a decision will apply to. */
    std::uint64_t index_ = 0;
};

} // namespace aqsim::supervise

#endif // AQSIM_SUPERVISE_ESCALATION_HH
