#include "supervise/run_supervisor.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>

#include "base/logging.hh"
#include "ckpt/manager.hh"
#include "engine/distributed_engine.hh"
#include "engine/threaded_engine.hh"
#include "net/network_controller.hh"
#include "stats/stats.hh"
#include "supervise/escalation.hh"

namespace aqsim::supervise
{

namespace
{

std::string
abortReport(const base::RunAbort &abort, std::uint64_t attempts,
            bool escalated, const IncidentLog &log)
{
    char head[256];
    std::snprintf(
        head, sizeof(head),
        "supervisor: giving up after %llu attempt%s%s\n"
        "  last failure: cause=%s quantum=%llu\n"
        "  detail: %s\n"
        "  incidents:",
        static_cast<unsigned long long>(attempts),
        attempts == 1 ? "" : "s",
        escalated ? " (conservative escalation also failed)" : "",
        abort.cause().c_str(),
        static_cast<unsigned long long>(abort.quantum()),
        abort.detail().c_str());
    std::string report = head;
    for (const Incident &incident : log.incidents())
        report += "\n    " + incident.toJson();
    return report;
}

} // namespace

Tick
safeQuantumBound(const engine::ClusterParams &params)
{
    // Replicates harness::safeQuantum without the layering violation
    // (supervise sits below harness): the bound is a pure function of
    // the network model, probed on a scratch controller.
    stats::Group scratch("probe");
    net::NetworkController controller(params.numNodes, params.network,
                                      scratch);
    return controller.minNetworkLatency();
}

RunSupervisor::RunSupervisor(SuperviseOptions options)
    : options_(std::move(options)), log_(options_.incidentLogPath)
{}

bool
RunSupervisor::sawPanic() const
{
    base::MutexLock lock(panicMutex_);
    return sawPanic_;
}

engine::PanicInfo
RunSupervisor::lastPanic() const
{
    base::MutexLock lock(panicMutex_);
    return lastPanic_;
}

engine::RunResult
RunSupervisor::runAttempt(const RunRequest &request,
                          engine::EngineOptions options,
                          core::QuantumPolicy &policy, bool arm_trap)
{
    if (request.engineKind == EngineKind::Distributed) {
        // The worker processes fork their own pristine clusters from
        // the parameters and the engine keeps a coordinator replica,
        // so there is no in-process cluster to build or expose — and
        // a stale one would alias the workload binding.
        cluster_.reset();
        std::optional<base::FailureTrap> trap;
        if (arm_trap)
            trap.emplace();
        engine::DistributedEngine engine(options);
        return engine.run(request.cluster, *request.workload, policy);
    }

    // A fresh cluster per attempt: a failed run's half-mutated state
    // is never reused; recovery state comes only from the checkpoint
    // replay (or from quantum zero).
    cluster_ =
        std::make_unique<engine::Cluster>(request.cluster,
                                          *request.workload);
    if (request.onClusterBuilt)
        request.onClusterBuilt(*cluster_);

    // The trap converts panic()/fatal() on this thread into
    // base::RunAbort; worker threads arm their own traps when
    // cancelToken is installed (threaded_engine.cc). An unsupervised
    // run arms nothing, keeping abort-the-process semantics.
    std::optional<base::FailureTrap> trap;
    if (arm_trap)
        trap.emplace();
    if (request.engineKind == EngineKind::Threaded) {
        engine::ThreadedEngine engine(options);
        return engine.run(*cluster_, policy);
    }
    engine::SequentialEngine engine(options);
    return engine.run(*cluster_, policy);
}

engine::RunResult
RunSupervisor::run(const RunRequest &request)
{
    AQSIM_ASSERT(request.workload != nullptr);
    AQSIM_ASSERT(request.policy != nullptr);

    if (!options_.enabled)
        return runAttempt(request, request.engine, *request.policy,
                          /*arm_trap=*/false);

    const std::uint64_t max_attempts = options_.maxRestarts + 1;
    std::string last_fail_cause;
    std::uint64_t last_fail_quantum = ~std::uint64_t{0};
    std::uint64_t same_quantum_failures = 0;
    std::uint64_t escalations = 0;
    std::uint64_t escalate_at = 0;
    bool escalated = false;

    for (std::uint64_t attempt = 1; attempt <= max_attempts;
         ++attempt) {
        engine::EngineOptions options = request.engine;
        cancel_.reset();
        options.cancelToken = &cancel_;
        const auto user_panic = request.engine.onWatchdogPanic;
        options.onWatchdogPanic =
            [this, user_panic](const engine::PanicInfo &info) {
                {
                    base::MutexLock lock(panicMutex_);
                    lastPanic_ = info;
                    sawPanic_ = true;
                }
                if (user_panic)
                    user_panic(info);
            };

        options.injectFailAfterQuantum = 0;
        options.injectWatchdogPanic = false;
        for (const InjectedFailure &f : options_.injectFailures) {
            if (f.attempt == attempt) {
                options.injectFailAfterQuantum = f.afterQuantum;
                options.injectWatchdogPanic = f.watchdog;
            }
        }
        // Peer drills describe the *first* attempt's failure; a
        // respawned fleet must run clean or recovery would livelock.
        if (attempt > 1)
            options.peerDrillSpec.clear();

        std::string restore_source;
        std::unique_ptr<core::QuantumPolicy> guard;
        core::QuantumPolicy *policy = request.policy;
        if (escalated) {
            // The guarded policy fingerprints differently, so the
            // escalated attempt can neither restore old checkpoints
            // nor write ones a later un-escalated run could misuse.
            options.restorePath.clear();
            options.checkpointEvery = 0;
            options.checkpointDir.clear();
            if (request.engineKind == EngineKind::Distributed) {
                // The distributed engine refuses any policy that is
                // not conservative for the whole run, and the window
                // policy is only clamped inside its window. A plain
                // fixed quantum at the safe bound is the distributed
                // escalation: final state is quantum-length
                // independent, so the result is unchanged.
                guard = std::make_unique<core::FixedQuantumPolicy>(
                    safeQuantumBound(request.cluster));
            } else {
                guard = std::make_unique<ConservativeWindowPolicy>(
                    request.policy->clone(),
                    safeQuantumBound(request.cluster), escalate_at,
                    options_.escalationWindowQuanta);
            }
            policy = guard.get();
        } else if (attempt > 1 && !options.checkpointDir.empty()) {
            // Probe before committing to a restore: a crash before
            // the first checkpoint write simply replays from scratch.
            ckpt::CheckpointManager probe(options.checkpointDir, 0, 0);
            ckpt::CheckpointImage image;
            std::string path;
            ckpt::CkptError error;
            if (probe.loadBest(image, path, error)) {
                options.restorePath = options.checkpointDir;
                restore_source = path;
            }
        }

        try {
            engine::RunResult result =
                runAttempt(request, std::move(options), *policy,
                           /*arm_trap=*/true);
            if (attempt > 1) {
                Incident incident;
                incident.attempt = attempt;
                // A recovery that healed a dead/hung worker fleet is
                // its own incident kind so fleet dashboards can count
                // peer churn separately from in-process recoveries.
                incident.cause = last_fail_cause == "peer-failure"
                                     ? "peer-recovery"
                                     : "none";
                incident.quantum = result.quanta;
                incident.restoreSource = restore_source;
                incident.outcome = "recovered";
                incident.detail =
                    escalated
                        ? "recovered under conservative escalation"
                        : "recovered";
                log_.append(incident);
            }
            result.superviseAttempts = attempt;
            result.superviseRecoveries = attempt - 1;
            result.superviseEscalations = escalations;
            return result;
        } catch (const base::RunAbort &abort) {
            last_fail_cause = abort.cause();
            if (abort.quantum() == last_fail_quantum) {
                ++same_quantum_failures;
            } else {
                last_fail_quantum = abort.quantum();
                same_quantum_failures = 1;
            }

            Incident incident;
            incident.attempt = attempt;
            incident.cause = abort.cause();
            incident.quantum = abort.quantum();
            incident.restoreSource = restore_source;
            incident.detail = abort.detail();

            // An escalated attempt was the last resort; an exhausted
            // budget means no further attempt exists. Either way the
            // abort record closes the log before the throw.
            if (escalated || attempt == max_attempts) {
                incident.outcome = "abort";
                log_.append(incident);
                throw SuperviseAbort(
                    abortReport(abort, attempt, escalated, log_));
            }

            if (same_quantum_failures >= options_.livelockThreshold) {
                escalated = true;
                escalate_at = abort.quantum();
                ++escalations;
                incident.outcome = "escalate";
            } else {
                incident.outcome = "retry";
            }

            const double backoff = std::min(
                options_.backoffMaxSeconds,
                options_.backoffBaseSeconds *
                    std::pow(options_.backoffFactor,
                             static_cast<double>(attempt - 1)));
            incident.backoffSeconds = backoff;
            log_.append(incident);
            if (backoff > 0.0)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(backoff));
        }
    }
    fatal("supervisor retry loop exited without a result");
}

} // namespace aqsim::supervise
