/**
 * @file
 * Self-healing run supervisor: restore, retry, escalate, report.
 *
 * The supervisor owns the whole run lifecycle. It builds a fresh
 * cluster per attempt, installs the engines' supervision seam
 * (EngineOptions::cancelToken / onWatchdogPanic), arms a FailureTrap
 * so watchdog expiries, invariant panics, fatal errors (e.g. reliable
 * retry exhaustion) and injected drills surface as catchable
 * base::RunAbort instead of killing the process, then runs the engine.
 *
 * On failure it restores from the newest good checkpoint
 * (CheckpointManager::loadBest, with its torn-file fallback), backs
 * off exponentially within a bounded restart budget, and retries.
 * Because "restore" is the engines' verified deterministic replay, a
 * supervised run that recovered N times produces the same
 * finalStateHash as an unsupervised clean run — recovery is
 * deterministic by construction.
 *
 * Repeated failure at the same quantum is a livelock: replaying
 * cannot help when the failure is a deterministic function of the
 * schedule. The supervisor then escalates once — reruns from scratch
 * with the policy clamped to the conservative Q <= T bound in a
 * window around the failing quantum (ConservativeWindowPolicy) — and
 * aborts with a structured report (SuperviseAbort) if even that
 * fails. Every decision lands in the JSONL incident log; see
 * docs/supervision.md.
 */

#ifndef AQSIM_SUPERVISE_RUN_SUPERVISOR_HH
#define AQSIM_SUPERVISE_RUN_SUPERVISOR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/failure.hh"
#include "base/mutex.hh"
#include "core/quantum_policy.hh"
#include "engine/cluster.hh"
#include "engine/run_result.hh"
#include "engine/sequential_engine.hh"
#include "supervise/incident_log.hh"
#include "workloads/workload.hh"

namespace aqsim::supervise
{

/** Which engine the supervisor drives. */
enum class EngineKind
{
    Sequential,
    Threaded,
    /** Multi-process (engine/distributed_engine.hh): attempts fork
     * fresh worker processes; peer failures are recoverable. */
    Distributed,
};

/**
 * Deterministic failure drill for one attempt (tests, chaos-soak CI):
 * compiled into EngineOptions::injectFailAfterQuantum on that attempt.
 */
struct InjectedFailure
{
    /** 1-based attempt to fail. */
    std::uint64_t attempt = 1;
    /** Fail right after this many quanta complete. */
    std::uint64_t afterQuantum = 1;
    /** Exercise the watchdog panic path instead of a direct abort. */
    bool watchdog = false;
};

/** Supervisor policy knobs. */
struct SuperviseOptions
{
    /** Route the run through the supervisor at all (harness knob). */
    bool enabled = false;
    /** Restart budget: at most 1 + maxRestarts attempts. */
    std::uint64_t maxRestarts = 5;
    /** First backoff sleep in host seconds (0 = no sleeping; tests). */
    double backoffBaseSeconds = 0.0;
    /** Backoff multiplier per further attempt. */
    double backoffFactor = 2.0;
    /** Backoff ceiling in host seconds. */
    double backoffMaxSeconds = 30.0;
    /** Failures at the same quantum before escalating. */
    std::uint64_t livelockThreshold = 2;
    /** Half-width of the escalated conservative window, in quanta. */
    std::uint64_t escalationWindowQuanta = 64;
    /** JSONL incident log path ("" = in-memory only). */
    std::string incidentLogPath;
    /** Deterministic failure drills (tests, chaos-soak CI). */
    std::vector<InjectedFailure> injectFailures;
};

/** Everything needed to (re)build and run one experiment attempt. */
struct RunRequest
{
    EngineKind engineKind = EngineKind::Sequential;
    engine::EngineOptions engine;
    engine::ClusterParams cluster;
    /** Workload shared by all attempts (engines reset it per run). */
    workloads::Workload *workload = nullptr;
    /** Policy instance (engines reset it per run). */
    core::QuantumPolicy *policy = nullptr;
    /** Called on each freshly built cluster before the engine runs —
     * the seam for attaching tracers/observers to the controller. */
    std::function<void(engine::Cluster &)> onClusterBuilt;
};

/** Terminal supervisor failure, carrying the structured report. */
class SuperviseAbort : public std::runtime_error
{
  public:
    explicit SuperviseAbort(const std::string &report)
        : std::runtime_error(report)
    {}
};

/** Runs a request to completion through restore/retry/escalate. */
class RunSupervisor
{
  public:
    explicit RunSupervisor(SuperviseOptions options);

    /**
     * Run @p request until one attempt succeeds. When supervision is
     * disabled (SuperviseOptions::enabled false) this is exactly one
     * plain engine run — no trap, no cancel token — so panics and
     * fatal errors keep their unsupervised kill-the-process semantics.
     * @throws SuperviseAbort when the restart budget is exhausted or
     *         an escalated attempt fails.
     */
    engine::RunResult run(const RunRequest &request);

    /** Incidents recorded so far (also mirrored to the JSONL log). */
    const IncidentLog &incidents() const { return log_; }

    /** @return true if any attempt tripped the watchdog. */
    bool sawPanic() const;

    /** Structured dump from the most recent watchdog panic. */
    engine::PanicInfo lastPanic() const;

    /** Cluster of the most recent attempt (stats/trace readout).
     * Null for distributed runs: the state lives in the forked
     * worker processes, not in any in-process cluster. */
    engine::Cluster *cluster() { return cluster_.get(); }
    std::unique_ptr<engine::Cluster> takeCluster()
    {
        return std::move(cluster_);
    }

  private:
    engine::RunResult runAttempt(const RunRequest &request,
                                 engine::EngineOptions options,
                                 core::QuantumPolicy &policy,
                                 bool arm_trap);

    SuperviseOptions options_;
    IncidentLog log_;
    base::CancelToken cancel_;
    std::unique_ptr<engine::Cluster> cluster_;

    /** Watchdog thread writes, supervisor thread reads post-run. */
    mutable base::Mutex panicMutex_;
    engine::PanicInfo lastPanic_ AQSIM_GUARDED_BY(panicMutex_);
    bool sawPanic_ AQSIM_GUARDED_BY(panicMutex_) = false;
};

/**
 * The conservative escalation bound for a cluster: the network's
 * minimum end-to-end latency T (Q <= T admits no stragglers).
 */
Tick safeQuantumBound(const engine::ClusterParams &params);

} // namespace aqsim::supervise

#endif // AQSIM_SUPERVISE_RUN_SUPERVISOR_HH
