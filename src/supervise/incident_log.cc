#include "supervise/incident_log.hh"

#include <cstdio>
#include <fstream>

namespace aqsim::supervise
{

namespace
{

/**
 * Minimal JSON string escaping: backslash, quote, and control
 * characters. Incident fields are ASCII diagnostics, so no UTF-8
 * handling is needed beyond passing bytes through.
 */
std::string
escapeJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
Incident::toJson() const
{
    char head[96];
    std::snprintf(head, sizeof(head),
                  "{\"attempt\":%llu,\"cause\":\"",
                  static_cast<unsigned long long>(attempt));
    char mid[96];
    std::snprintf(mid, sizeof(mid),
                  "\",\"quantum\":%llu,\"backoff_s\":%.6g,",
                  static_cast<unsigned long long>(quantum),
                  backoffSeconds);
    return std::string(head) + escapeJson(cause) + mid +
           "\"restore_source\":\"" + escapeJson(restoreSource) +
           "\",\"outcome\":\"" + escapeJson(outcome) +
           "\",\"detail\":\"" + escapeJson(detail) + "\"}";
}

IncidentLog::IncidentLog(std::string path) : path_(std::move(path)) {}

void
IncidentLog::append(Incident incident)
{
    if (!path_.empty()) {
        // Append-mode reopen per record: incidents are rare (one per
        // recovery decision) and an open-per-write log survives the
        // supervisor being destroyed mid-run by a propagating abort.
        std::ofstream out(path_, std::ios::app);
        if (out)
            out << incident.toJson() << '\n';
    }
    incidents_.push_back(std::move(incident));
}

} // namespace aqsim::supervise
