/**
 * @file
 * Per-run synchronization statistics and the optional quantum timeline.
 *
 * The timeline (one record per quantum) is what the scale-out analysis
 * in the paper's Section 6 plots: traffic density and simulation speed
 * over time. Recording it is optional because a 1 us ground-truth run
 * can have millions of quanta.
 */

#ifndef AQSIM_CORE_SYNC_STATS_HH
#define AQSIM_CORE_SYNC_STATS_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "stats/histogram.hh"
#include "stats/stats.hh"

namespace aqsim::core
{

/** One completed synchronization quantum. */
struct QuantumRecord
{
    /** Simulated start tick of the quantum. */
    Tick start = 0;
    /** Quantum length in ticks. */
    Tick length = 0;
    /** Frames the controller routed during the quantum. */
    std::uint64_t packets = 0;
    /** Stragglers among them. */
    std::uint64_t stragglers = 0;
    /** Modeled/measured host time the quantum took (incl. barrier). */
    HostNs hostNs = 0.0;
};

/** Aggregated synchronization statistics for one run. */
class SyncStats
{
  public:
    explicit SyncStats(stats::Group &parent);

    /** Record one completed quantum. */
    void record(const QuantumRecord &rec, bool keep_timeline);

    std::uint64_t numQuanta() const { return numQuanta_; }
    HostNs totalHostNs() const { return totalHostNs_; }
    Tick totalSimTicks() const { return totalSimTicks_; }

    /** Mean quantum length in ticks. */
    double meanQuantumLength() const;

    const std::vector<QuantumRecord> &timeline() const
    {
        return timeline_;
    }

    void reset();

  private:
    std::uint64_t numQuanta_ = 0;
    HostNs totalHostNs_ = 0.0;
    Tick totalSimTicks_ = 0;
    std::vector<QuantumRecord> timeline_;

    stats::Group &group_;
    stats::Scalar &statQuanta_;
    stats::Scalar &statHostNs_;
    stats::Average &statQuantumLength_;
    stats::Log2Distribution &statQuantumDist_;
};

} // namespace aqsim::core

#endif // AQSIM_CORE_SYNC_STATS_HH
