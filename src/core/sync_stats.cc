#include "core/sync_stats.hh"

namespace aqsim::core
{

SyncStats::SyncStats(stats::Group &parent)
    : group_(parent.addGroup("sync")),
      statQuanta_(group_.add<stats::Scalar>(
          "quanta", "synchronization quanta executed")),
      statHostNs_(group_.add<stats::Scalar>(
          "hostNs", "modeled host nanoseconds consumed")),
      statQuantumLength_(group_.add<stats::Average>(
          "quantumLength", "quantum length in ticks")),
      statQuantumDist_(group_.add<stats::Log2Distribution>(
          "quantumLengthDist", "distribution of quantum lengths"))
{}

void
SyncStats::record(const QuantumRecord &rec, bool keep_timeline)
{
    ++numQuanta_;
    totalHostNs_ += rec.hostNs;
    totalSimTicks_ += rec.length;
    ++statQuanta_;
    statHostNs_ += rec.hostNs;
    statQuantumLength_.sample(static_cast<double>(rec.length));
    statQuantumDist_.sample(rec.length);
    if (keep_timeline)
        timeline_.push_back(rec);
}

double
SyncStats::meanQuantumLength() const
{
    return numQuanta_
               ? static_cast<double>(totalSimTicks_) /
                     static_cast<double>(numQuanta_)
               : 0.0;
}

void
SyncStats::reset()
{
    numQuanta_ = 0;
    totalHostNs_ = 0.0;
    totalSimTicks_ = 0;
    timeline_.clear();
}

} // namespace aqsim::core
