/**
 * @file
 * Quantum-length policies, including the paper's contribution.
 *
 * A QuantumPolicy decides the length of the next synchronization
 * quantum given the traffic observed in the last one. The paper's
 * Algorithm 1 ("Dynamic Quantum") is AdaptiveQuantumPolicy; fixed
 * quanta are the baseline it is evaluated against. Two further
 * variants are provided for ablation studies.
 */

#ifndef AQSIM_CORE_QUANTUM_POLICY_HH
#define AQSIM_CORE_QUANTUM_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/types.hh"

namespace aqsim::ckpt
{
class Reader;
class Writer;
} // namespace aqsim::ckpt

namespace aqsim::core
{

/** Decides the next synchronization quantum length. */
class QuantumPolicy
{
  public:
    virtual ~QuantumPolicy() = default;

    /** @return the quantum to use for the first interval. */
    virtual Tick initialQuantum() const = 0;

    /**
     * Decide the next quantum length.
     *
     * @param packets_last_quantum frames the network controller routed
     *        during the quantum that just completed
     * @return length of the next quantum in ticks
     */
    virtual Tick next(std::uint64_t packets_last_quantum) = 0;

    /** Reset internal state for a fresh run. */
    virtual void reset() = 0;

    /** Short configuration name, e.g. "fixed 100us" or "dyn 1.03:0.02". */
    virtual std::string name() const = 0;

    /** Deep copy (each run owns a private policy instance). */
    virtual std::unique_ptr<QuantumPolicy> clone() const = 0;

    /**
     * Checkpoint support: persist adaptation state (if any). The
     * policy's configuration is covered by the config fingerprint.
     */
    virtual void serialize(ckpt::Writer &) const {}

    /** Restore state persisted by serialize(). */
    virtual void deserialize(ckpt::Reader &) {}
};

/** Constant quantum: the classic WWT-style lock-step baseline. */
class FixedQuantumPolicy : public QuantumPolicy
{
  public:
    explicit FixedQuantumPolicy(Tick quantum);

    Tick initialQuantum() const override { return quantum_; }
    Tick next(std::uint64_t) override { return quantum_; }
    void reset() override {}
    std::string name() const override;
    std::unique_ptr<QuantumPolicy> clone() const override;

  private:
    Tick quantum_;
};

/**
 * The paper's Algorithm 1: "Dynamic Quantum".
 *
 *   Q = min_Q
 *   repeat each quantum:
 *     if (np == 0) Q *= inc  else  Q *= dec
 *     clamp Q to [min_Q, max_Q]
 *
 * Grow slowly over quiet phases (inc of 1.02-1.05), collapse almost
 * instantly when traffic appears (dec near 1/sqrt(max_Q/min_Q) so two
 * to three quanta suffice) — "driving over speed bumps".
 */
class AdaptiveQuantumPolicy : public QuantumPolicy
{
  public:
    struct Params
    {
        Tick minQuantum = microseconds(1);
        Tick maxQuantum = microseconds(1000);
        double inc = 1.03;
        double dec = 0.02;
    };

    explicit AdaptiveQuantumPolicy(Params params);

    Tick initialQuantum() const override { return params_.minQuantum; }
    Tick next(std::uint64_t packets_last_quantum) override;
    void reset() override;
    std::string name() const override;
    std::unique_ptr<QuantumPolicy> clone() const override;
    void serialize(ckpt::Writer &w) const override;
    void deserialize(ckpt::Reader &r) override;

    const Params &params() const { return params_; }

  private:
    Params params_;
    /** Kept in floating point so small growth factors accumulate. */
    double q_;
};

/**
 * Ablation variant: decrease only when traffic exceeds a threshold,
 * tolerating sparse background packets. Not part of the paper; used by
 * bench/ablation_policy to quantify the value of reacting to *any*
 * packet (the paper's design).
 */
class ThresholdAdaptivePolicy : public QuantumPolicy
{
  public:
    struct Params
    {
        AdaptiveQuantumPolicy::Params base;
        std::uint64_t packetThreshold = 4;
    };

    explicit ThresholdAdaptivePolicy(Params params);

    Tick initialQuantum() const override
    {
        return params_.base.minQuantum;
    }
    Tick next(std::uint64_t packets_last_quantum) override;
    void reset() override;
    std::string name() const override;
    std::unique_ptr<QuantumPolicy> clone() const override;
    void serialize(ckpt::Writer &w) const override;
    void deserialize(ckpt::Reader &r) override;

  private:
    Params params_;
    double q_;
};

/**
 * Ablation variant: symmetric multiplicative-increase /
 * multiplicative-decrease with equal rates, i.e. what the adaptive
 * scheme degrades to without the paper's fast-decrease insight.
 */
class SymmetricAdaptivePolicy : public QuantumPolicy
{
  public:
    explicit SymmetricAdaptivePolicy(AdaptiveQuantumPolicy::Params params);

    Tick initialQuantum() const override { return params_.minQuantum; }
    Tick next(std::uint64_t packets_last_quantum) override;
    void reset() override;
    std::string name() const override;
    std::unique_ptr<QuantumPolicy> clone() const override;
    void serialize(ckpt::Writer &w) const override;
    void deserialize(ckpt::Reader &r) override;

  private:
    AdaptiveQuantumPolicy::Params params_;
    double q_;
};

/**
 * Parse a policy specification string:
 *   "fixed:<ticks>"            e.g. "fixed:100us", "fixed:1us"
 *   "dyn:<inc>:<dec>[:min,max]" e.g. "dyn:1.03:0.02"
 *   "threshold:<inc>:<dec>:<np>"
 *   "symmetric:<factor>"
 * Time suffixes: ns, us, ms. Fatal on malformed input.
 */
std::unique_ptr<QuantumPolicy> parsePolicy(const std::string &spec);

/** Parse "100us" / "1ms" / "250ns" / bare ns count into ticks. */
Tick parseTicks(const std::string &text);

/** Render ticks compactly ("1us", "100us", "1ms", "750ns"). */
std::string formatTicks(Tick t);

} // namespace aqsim::core

#endif // AQSIM_CORE_QUANTUM_POLICY_HH
