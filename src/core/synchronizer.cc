#include "core/synchronizer.hh"

#include "base/debug.hh"
#include "base/logging.hh"
#include "check/invariants.hh"
#include "ckpt/ckpt_io.hh"

namespace aqsim::core
{

Synchronizer::Synchronizer(QuantumPolicy &policy,
                           net::NetworkController &controller,
                           stats::Group &stats_parent,
                           bool record_timeline)
    : policy_(policy), controller_(controller), stats_(stats_parent),
      recordTimeline_(record_timeline)
{}

void
Synchronizer::begin()
{
    policy_.reset();
    stats_.reset();
    start_ = 0;
    end_ = policy_.initialQuantum();
    AQSIM_ASSERT(end_ > start_);
    check::InvariantChecker::instance().onRunBegin();
    check::InvariantChecker::instance().onQuantumOpen(
        start_, end_, conservative(),
        controller_.minNetworkLatency());
    stragglerBase_ = controller_.totalStragglers();
    controller_.beginQuantum();
}

void
Synchronizer::completeQuantum(HostNs host_ns)
{
    const std::uint64_t packets = controller_.packetsThisQuantum();
    const std::uint64_t stragglers =
        controller_.totalStragglers() - stragglerBase_;

    QuantumRecord rec;
    rec.start = start_;
    rec.length = end_ - start_;
    rec.packets = packets;
    rec.stragglers = stragglers;
    rec.hostNs = host_ns;
    stats_.record(rec, recordTimeline_);
    check::InvariantChecker::instance().onQuantumComplete(
        start_, end_, stragglers);

    const Tick next_len = policy_.next(packets);
    AQSIM_ASSERT(next_len > 0);
    AQSIM_DPRINTF(Quantum, end_, "sync",
                  "quantum %llu [%llu,%llu) np=%llu stragglers=%llu "
                  "-> next Q=%llu",
                  static_cast<unsigned long long>(stats_.numQuanta()),
                  static_cast<unsigned long long>(start_),
                  static_cast<unsigned long long>(end_),
                  static_cast<unsigned long long>(packets),
                  static_cast<unsigned long long>(stragglers),
                  static_cast<unsigned long long>(next_len));
    start_ = end_;
    end_ = start_ + next_len;
    check::InvariantChecker::instance().onQuantumOpen(
        start_, end_, conservative(),
        controller_.minNetworkLatency());
    stragglerBase_ = controller_.totalStragglers();
    controller_.beginQuantum();
}

bool
Synchronizer::conservative() const
{
    // Only a fixed policy with Q <= T provably never produces
    // stragglers; an adaptive policy exceeds T by design whenever
    // traffic pauses.
    const auto *fixed = dynamic_cast<const FixedQuantumPolicy *>(&policy_);
    return fixed &&
           fixed->initialQuantum() <= controller_.minNetworkLatency();
}

void
Synchronizer::serialize(ckpt::Writer &w) const
{
    w.u64(start_);
    w.u64(end_);
    w.u64(stragglerBase_);
    w.u64(stats_.numQuanta());
    w.u64(stats_.totalSimTicks());
    policy_.serialize(w);
}

std::uint64_t
Synchronizer::stateHash() const
{
    ckpt::Writer w;
    serialize(w);
    return w.hash();
}

} // namespace aqsim::core
