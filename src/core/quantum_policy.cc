#include "core/quantum_policy.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "base/logging.hh"
#include "ckpt/ckpt_io.hh"

namespace aqsim::core
{

namespace
{

/** Clamp a floating-point quantum into [min, max] ticks. */
double
clampQuantum(double q, Tick min_q, Tick max_q)
{
    return std::clamp(q, static_cast<double>(min_q),
                      static_cast<double>(max_q));
}

Tick
toTicks(double q)
{
    return static_cast<Tick>(std::llround(q));
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (;;) {
        auto pos = text.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(text.substr(start));
            return out;
        }
        out.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

} // namespace

Tick
parseTicks(const std::string &text)
{
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || value < 0)
        fatal("cannot parse time value '%s'", text.c_str());
    const std::string suffix(end);
    double scale = 1.0;
    if (suffix == "ns" || suffix.empty())
        scale = 1.0;
    else if (suffix == "us")
        scale = 1e3;
    else if (suffix == "ms")
        scale = 1e6;
    else if (suffix == "s")
        scale = 1e9;
    else
        fatal("unknown time suffix '%s' in '%s'", suffix.c_str(),
              text.c_str());
    return static_cast<Tick>(std::llround(value * scale));
}

std::string
formatTicks(Tick t)
{
    char buf[48];
    if (t >= 1000000000ULL && t % 1000000000ULL == 0)
        std::snprintf(buf, sizeof(buf), "%llus",
                      static_cast<unsigned long long>(t / 1000000000ULL));
    else if (t >= 1000000ULL && t % 1000000ULL == 0)
        std::snprintf(buf, sizeof(buf), "%llums",
                      static_cast<unsigned long long>(t / 1000000ULL));
    else if (t >= 1000ULL && t % 1000ULL == 0)
        std::snprintf(buf, sizeof(buf), "%lluus",
                      static_cast<unsigned long long>(t / 1000ULL));
    else
        std::snprintf(buf, sizeof(buf), "%lluns",
                      static_cast<unsigned long long>(t));
    return buf;
}

FixedQuantumPolicy::FixedQuantumPolicy(Tick quantum) : quantum_(quantum)
{
    if (quantum == 0)
        fatal("fixed quantum must be positive");
}

std::string
FixedQuantumPolicy::name() const
{
    return "fixed " + formatTicks(quantum_);
}

std::unique_ptr<QuantumPolicy>
FixedQuantumPolicy::clone() const
{
    return std::make_unique<FixedQuantumPolicy>(quantum_);
}

AdaptiveQuantumPolicy::AdaptiveQuantumPolicy(Params params)
    : params_(params), q_(static_cast<double>(params.minQuantum))
{
    if (params_.minQuantum == 0 ||
        params_.maxQuantum < params_.minQuantum)
        fatal("adaptive quantum requires 0 < min_Q <= max_Q");
    if (params_.inc <= 1.0)
        fatal("adaptive quantum increase factor must be > 1 (got %g)",
              params_.inc);
    if (params_.dec <= 0.0 || params_.dec >= 1.0)
        fatal("adaptive quantum decrease factor must be in (0,1) "
              "(got %g)",
              params_.dec);
}

Tick
AdaptiveQuantumPolicy::next(std::uint64_t packets_last_quantum)
{
    // Algorithm 1 (verbatim): grow over silence, collapse on traffic.
    if (packets_last_quantum == 0)
        q_ *= params_.inc;
    else
        q_ *= params_.dec;
    q_ = clampQuantum(q_, params_.minQuantum, params_.maxQuantum);
    return toTicks(q_);
}

void
AdaptiveQuantumPolicy::reset()
{
    q_ = static_cast<double>(params_.minQuantum);
}

std::string
AdaptiveQuantumPolicy::name() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "dyn %s %.4g:%.4g",
                  formatTicks(params_.maxQuantum).c_str(), params_.inc,
                  params_.dec);
    return buf;
}

std::unique_ptr<QuantumPolicy>
AdaptiveQuantumPolicy::clone() const
{
    return std::make_unique<AdaptiveQuantumPolicy>(params_);
}

void
AdaptiveQuantumPolicy::serialize(ckpt::Writer &w) const
{
    w.f64(q_);
}

void
AdaptiveQuantumPolicy::deserialize(ckpt::Reader &r)
{
    q_ = r.f64();
}

ThresholdAdaptivePolicy::ThresholdAdaptivePolicy(Params params)
    : params_(params), q_(static_cast<double>(params.base.minQuantum))
{
    if (params_.base.minQuantum == 0 ||
        params_.base.maxQuantum < params_.base.minQuantum)
        fatal("threshold policy requires 0 < min_Q <= max_Q");
    if (params_.base.inc <= 1.0)
        fatal("threshold policy increase factor must be > 1 (got %g)",
              params_.base.inc);
    if (params_.base.dec <= 0.0 || params_.base.dec >= 1.0)
        fatal("threshold policy decrease factor must be in (0,1) "
              "(got %g)",
              params_.base.dec);
}

Tick
ThresholdAdaptivePolicy::next(std::uint64_t packets_last_quantum)
{
    if (packets_last_quantum > params_.packetThreshold)
        q_ *= params_.base.dec;
    else if (packets_last_quantum == 0)
        q_ *= params_.base.inc;
    // else: hold Q in the tolerated band.
    q_ = clampQuantum(q_, params_.base.minQuantum,
                      params_.base.maxQuantum);
    return toTicks(q_);
}

void
ThresholdAdaptivePolicy::reset()
{
    q_ = static_cast<double>(params_.base.minQuantum);
}

std::string
ThresholdAdaptivePolicy::name() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "thresh %llu %.4g:%.4g",
                  static_cast<unsigned long long>(
                      params_.packetThreshold),
                  params_.base.inc, params_.base.dec);
    return buf;
}

std::unique_ptr<QuantumPolicy>
ThresholdAdaptivePolicy::clone() const
{
    return std::make_unique<ThresholdAdaptivePolicy>(params_);
}

void
ThresholdAdaptivePolicy::serialize(ckpt::Writer &w) const
{
    w.f64(q_);
}

void
ThresholdAdaptivePolicy::deserialize(ckpt::Reader &r)
{
    q_ = r.f64();
}

SymmetricAdaptivePolicy::SymmetricAdaptivePolicy(
    AdaptiveQuantumPolicy::Params params)
    : params_(params), q_(static_cast<double>(params.minQuantum))
{
    if (params_.minQuantum == 0 ||
        params_.maxQuantum < params_.minQuantum)
        fatal("symmetric policy requires 0 < min_Q <= max_Q");
    if (params_.inc <= 1.0)
        fatal("symmetric policy factor must be > 1 (got %g)",
              params_.inc);
}

Tick
SymmetricAdaptivePolicy::next(std::uint64_t packets_last_quantum)
{
    // Decrease at the same (slow) rate as the increase: what Algorithm 1
    // would be without the fast-collapse design point.
    if (packets_last_quantum == 0)
        q_ *= params_.inc;
    else
        q_ /= params_.inc;
    q_ = clampQuantum(q_, params_.minQuantum, params_.maxQuantum);
    return toTicks(q_);
}

void
SymmetricAdaptivePolicy::reset()
{
    q_ = static_cast<double>(params_.minQuantum);
}

std::string
SymmetricAdaptivePolicy::name() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "symmetric %.4g", params_.inc);
    return buf;
}

std::unique_ptr<QuantumPolicy>
SymmetricAdaptivePolicy::clone() const
{
    return std::make_unique<SymmetricAdaptivePolicy>(params_);
}

void
SymmetricAdaptivePolicy::serialize(ckpt::Writer &w) const
{
    w.f64(q_);
}

void
SymmetricAdaptivePolicy::deserialize(ckpt::Reader &r)
{
    q_ = r.f64();
}

std::unique_ptr<QuantumPolicy>
parsePolicy(const std::string &spec)
{
    const auto parts = split(spec, ':');
    const std::string &kind = parts[0];
    if (kind == "fixed") {
        if (parts.size() != 2)
            fatal("expected fixed:<quantum>, got '%s'", spec.c_str());
        return std::make_unique<FixedQuantumPolicy>(
            parseTicks(parts[1]));
    }
    if (kind == "dyn") {
        AdaptiveQuantumPolicy::Params p;
        if (parts.size() < 3 || parts.size() > 5)
            fatal("expected dyn:<inc>:<dec>[:min:max], got '%s'",
                  spec.c_str());
        p.inc = std::atof(parts[1].c_str());
        p.dec = std::atof(parts[2].c_str());
        if (parts.size() >= 4)
            p.minQuantum = parseTicks(parts[3]);
        if (parts.size() >= 5)
            p.maxQuantum = parseTicks(parts[4]);
        return std::make_unique<AdaptiveQuantumPolicy>(p);
    }
    if (kind == "threshold") {
        if (parts.size() != 4)
            fatal("expected threshold:<inc>:<dec>:<np>, got '%s'",
                  spec.c_str());
        ThresholdAdaptivePolicy::Params p;
        p.base.inc = std::atof(parts[1].c_str());
        p.base.dec = std::atof(parts[2].c_str());
        p.packetThreshold =
            static_cast<std::uint64_t>(std::atoll(parts[3].c_str()));
        return std::make_unique<ThresholdAdaptivePolicy>(p);
    }
    if (kind == "symmetric") {
        if (parts.size() != 2)
            fatal("expected symmetric:<factor>, got '%s'", spec.c_str());
        AdaptiveQuantumPolicy::Params p;
        p.inc = std::atof(parts[1].c_str());
        return std::make_unique<SymmetricAdaptivePolicy>(p);
    }
    fatal("unknown policy kind '%s' in '%s'", kind.c_str(), spec.c_str());
}

} // namespace aqsim::core
