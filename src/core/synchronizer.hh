/**
 * @file
 * Quantum-barrier synchronization bookkeeping.
 *
 * The Synchronizer owns the sequence of synchronization quanta: it asks
 * the QuantumPolicy for each next quantum length, tracks the current
 * window [start, end), feeds the per-quantum packet count from the
 * network controller into the policy, and accumulates SyncStats.
 *
 * It is engine-agnostic: both the deterministic SequentialEngine and
 * the ThreadedEngine drive the same Synchronizer, which keeps the
 * paper's algorithm in exactly one place.
 */

#ifndef AQSIM_CORE_SYNCHRONIZER_HH
#define AQSIM_CORE_SYNCHRONIZER_HH

#include <memory>

#include "base/types.hh"
#include "core/quantum_policy.hh"
#include "core/sync_stats.hh"
#include "net/network_controller.hh"

namespace aqsim::ckpt
{
class Writer;
} // namespace aqsim::ckpt

namespace aqsim::core
{

/** Orchestrates the lock-step quantum sequence for one run. */
class Synchronizer
{
  public:
    /**
     * @param policy quantum-length policy (owned by the caller, reset
     *        by begin())
     * @param controller network controller providing packet counts
     * @param stats_parent group under which sync stats register
     * @param record_timeline keep one QuantumRecord per quantum
     */
    Synchronizer(QuantumPolicy &policy,
                 net::NetworkController &controller,
                 stats::Group &stats_parent, bool record_timeline);

    /** Initialize the first quantum window starting at tick 0. */
    void begin();

    /** @return simulated start tick of the current quantum. */
    Tick quantumStart() const { return start_; }

    /** @return simulated end tick (exclusive) of the current quantum. */
    Tick quantumEnd() const { return end_; }

    /** @return length of the current quantum. */
    Tick quantumLength() const { return end_ - start_; }

    /**
     * Complete the current quantum: feed the observed packet count to
     * the policy, record stats, and open the next window.
     *
     * @param host_ns host time the quantum consumed (incl. barrier)
     */
    void completeQuantum(HostNs host_ns);

    /**
     * @return true if the configured policy can never produce a
     * straggler (every quantum <= the minimum network latency T).
     * This is the paper's Q <= T safety condition.
     */
    bool conservative() const;

    const SyncStats &stats() const { return stats_; }
    std::uint64_t numQuanta() const { return stats_.numQuanta(); }

    /**
     * Checkpoint support: persist the quantum window, policy
     * adaptation state, and simulated-time aggregates. Host-time
     * measurements (wall clock) are deliberately excluded — they are
     * never bit-identical across runs and would poison the
     * divergence self-check.
     */
    void serialize(ckpt::Writer &w) const;

    /** FNV-1a fingerprint of serialize() output. */
    std::uint64_t stateHash() const;

  private:
    QuantumPolicy &policy_;
    net::NetworkController &controller_;
    SyncStats stats_;
    bool recordTimeline_;

    Tick start_ = 0;
    Tick end_ = 0;
    /** Controller straggler total at quantum start (for deltas). */
    std::uint64_t stragglerBase_ = 0;
};

} // namespace aqsim::core

#endif // AQSIM_CORE_SYNCHRONIZER_HH
