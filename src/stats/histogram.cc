#include "stats/histogram.hh"

#include <bit>
#include <cstdio>

#include "base/logging.hh"

namespace aqsim::stats
{

Histogram::Histogram(std::string name, std::string desc, double lo,
                     double hi, std::size_t buckets)
    : Stat(std::move(name), std::move(desc)), lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    AQSIM_ASSERT(hi > lo && buckets > 0);
}

void
Histogram::sample(double v)
{
    ++total_;
    sum_ += v;
    if (v < lo_) {
        ++underflow_;
    } else if (v >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((v - lo_) / width_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1; // guards fp rounding at hi_
        ++counts_[idx];
    }
}

std::vector<std::pair<std::string, double>>
Histogram::rows() const
{
    std::vector<std::pair<std::string, double>> out;
    out.emplace_back("samples", static_cast<double>(total_));
    out.emplace_back("mean", mean());
    out.emplace_back("underflow", static_cast<double>(underflow_));
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        char label[64];
        std::snprintf(label, sizeof(label), "[%g,%g)",
                      lo_ + width_ * static_cast<double>(i),
                      lo_ + width_ * static_cast<double>(i + 1));
        out.emplace_back(label, static_cast<double>(counts_[i]));
    }
    out.emplace_back("overflow", static_cast<double>(overflow_));
    return out;
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c = 0;
    underflow_ = overflow_ = total_ = 0;
    sum_ = 0.0;
}

Log2Distribution::Log2Distribution(std::string name, std::string desc)
    : Stat(std::move(name), std::move(desc))
{}

void
Log2Distribution::sample(std::uint64_t v)
{
    ++total_;
    sum_ += static_cast<double>(v);
    if (v > max_)
        max_ = v;
    const std::size_t bucket =
        v < 2 ? 0 : static_cast<std::size_t>(std::bit_width(v) - 1);
    if (bucket >= counts_.size())
        counts_.resize(bucket + 1, 0);
    ++counts_[bucket];
}

std::uint64_t
Log2Distribution::bucketCount(std::size_t i) const
{
    return i < counts_.size() ? counts_[i] : 0;
}

std::vector<std::pair<std::string, double>>
Log2Distribution::rows() const
{
    std::vector<std::pair<std::string, double>> out;
    out.emplace_back("samples", static_cast<double>(total_));
    out.emplace_back("mean", mean());
    out.emplace_back("max", static_cast<double>(max_));
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        char label[64];
        std::snprintf(label, sizeof(label), "[2^%zu,2^%zu)", i, i + 1);
        out.emplace_back(label, static_cast<double>(counts_[i]));
    }
    return out;
}

void
Log2Distribution::reset()
{
    counts_.clear();
    total_ = max_ = 0;
    sum_ = 0.0;
}

} // namespace aqsim::stats
