/**
 * @file
 * Bucketed statistics: linear histogram and log2 distribution.
 */

#ifndef AQSIM_STATS_HISTOGRAM_HH
#define AQSIM_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

#include "stats/stats.hh"

namespace aqsim::stats
{

/**
 * Fixed-width linear histogram over [lo, hi); samples outside the range
 * land in underflow/overflow buckets.
 */
class Histogram : public Stat
{
  public:
    Histogram(std::string name, std::string desc, double lo, double hi,
              std::size_t buckets);

    void sample(double v);

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t totalSamples() const { return total_; }
    double mean() const { return total_ ? sum_ / total_ : 0.0; }

    std::vector<std::pair<std::string, double>> rows() const override;
    void reset() override;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
};

/**
 * Power-of-two bucketed distribution for wide-dynamic-range values
 * (message sizes, straggler lateness in ticks). Bucket i counts samples
 * in [2^i, 2^(i+1)); bucket 0 additionally holds [0, 2).
 */
class Log2Distribution : public Stat
{
  public:
    Log2Distribution(std::string name, std::string desc);

    void sample(std::uint64_t v);

    std::uint64_t totalSamples() const { return total_; }
    double mean() const { return total_ ? sum_ / total_ : 0.0; }
    std::uint64_t maxValue() const { return max_; }

    /** Count of samples in bucket i ([2^i, 2^(i+1))). */
    std::uint64_t bucketCount(std::size_t i) const;
    std::size_t numBuckets() const { return counts_.size(); }

    std::vector<std::pair<std::string, double>> rows() const override;
    void reset() override;

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t max_ = 0;
    double sum_ = 0.0;
};

} // namespace aqsim::stats

#endif // AQSIM_STATS_HISTOGRAM_HH
