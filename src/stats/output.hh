/**
 * @file
 * Text and CSV rendering of a statistics Group tree.
 */

#ifndef AQSIM_STATS_OUTPUT_HH
#define AQSIM_STATS_OUTPUT_HH

#include <ostream>

#include "stats/stats.hh"

namespace aqsim::stats
{

/**
 * Dump a group tree as aligned "path.to.stat  value  # desc" rows,
 * gem5 stats.txt style.
 */
void dumpText(const Group &root, std::ostream &out);

/** Dump a group tree as CSV rows (path,label,value,description). */
void dumpCsv(const Group &root, std::ostream &out);

} // namespace aqsim::stats

#endif // AQSIM_STATS_OUTPUT_HH
