#include "stats/phase_timing.hh"

namespace aqsim::stats
{

const char *
enginePhaseName(EnginePhase phase)
{
    switch (phase) {
      case EnginePhase::Sort:
        return "sort";
      case EnginePhase::Exchange:
        return "exchange";
      case EnginePhase::Merge:
        return "merge";
      case EnginePhase::Dispatch:
        return "dispatch";
    }
    return "?";
}

PhaseTimes::PhaseTimes(std::size_t workers, bool enabled)
    : slots_(workers), enabled_(enabled)
{}

std::uint64_t
PhaseTimes::total(EnginePhase phase) const
{
    std::uint64_t ns = 0;
    for (const Slot &slot : slots_)
        ns += slot.ns[static_cast<unsigned>(phase)];
    return ns;
}

} // namespace aqsim::stats
