/**
 * @file
 * Per-phase wall-clock accounting for the engines' quantum critical
 * path (sort / exchange / merge / dispatch).
 *
 * The paper's Fig. 5 argument — synchronization-boundary cost is what
 * parallel cluster simulation amortizes — only holds if that cost is
 * *measured*, phase by phase, not inferred from end-to-end wall time.
 * PhaseTimes gives each worker a cache-line-private accumulator per
 * phase; the coordinator sums them after the barrier, so the hot path
 * never shares a counter across threads.
 *
 * Measured wall-clock is nondeterministic by nature: these values may
 * reach RunResult/summary() (behind EngineOptions::phaseStats) and
 * bench.py sweeps, but must never enter checkpoint images, state
 * hashes, or anything the divergence self-check compares.
 *
 * Timing is off by default (PhaseTimes::enabled()): a disabled
 * PhaseTimer costs one branch, so high-quantum-rate runs (the tracked
 * 64-node fig9 benchmarks) pay no steady_clock calls.
 */

#ifndef AQSIM_STATS_PHASE_TIMING_HH
#define AQSIM_STATS_PHASE_TIMING_HH

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace aqsim::stats
{

/** Phases of the engines' K×K delivery exchange (delivery_batch). */
enum class EnginePhase : unsigned
{
    /** Per-shard sorting of the K destination sub-runs at close. */
    Sort,
    /** Post-barrier assembly of a destination column's run views. */
    Exchange,
    /** Per-destination k-way merge into the lane's dispatch scratch. */
    Merge,
    /** Scheduling merged deliveries into the shard's node queues. */
    Dispatch,
};

/** Number of distinct phases (array sizing). */
constexpr std::size_t numEnginePhases = 4;

/** Short stable identifier, e.g. "sort". */
const char *enginePhaseName(EnginePhase phase);

/**
 * One nanosecond accumulator per (worker, phase), padded so concurrent
 * workers never share a cache line. add() is called by the slot's
 * owning worker only; total() by the coordinator with workers parked
 * at the gate (the gate's release/acquire publishes the slots).
 */
class PhaseTimes
{
  public:
    /** @param workers slot count K; @param enabled off = no clocks. */
    explicit PhaseTimes(std::size_t workers, bool enabled);

    PhaseTimes(const PhaseTimes &) = delete;
    PhaseTimes &operator=(const PhaseTimes &) = delete;

    bool enabled() const { return enabled_; }

    /** Owner of @p worker's slot: account @p ns against @p phase. */
    void
    add(std::size_t worker, EnginePhase phase, std::uint64_t ns)
    {
        slots_[worker].ns[static_cast<unsigned>(phase)] += ns;
    }

    /** Coordinator, workers parked: ns across all workers. */
    std::uint64_t total(EnginePhase phase) const;

  private:
    struct alignas(64) Slot
    {
        std::array<std::uint64_t, numEnginePhases> ns{};
    };

    std::vector<Slot> slots_;
    const bool enabled_;
};

/**
 * Scoped timer: measures its own lifetime and accounts it to one
 * (worker, phase) slot. A no-op (one branch, no clock calls) when the
 * PhaseTimes is disabled.
 */
class PhaseTimer
{
  public:
    PhaseTimer(PhaseTimes &times, std::size_t worker,
               EnginePhase phase)
        : times_(times), worker_(worker), phase_(phase)
    {
        if (times_.enabled())
            start_ = std::chrono::steady_clock::now();
    }

    ~PhaseTimer()
    {
        if (!times_.enabled())
            return;
        const auto ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start_)
                .count();
        times_.add(worker_, phase_,
                   static_cast<std::uint64_t>(ns));
    }

    PhaseTimer(const PhaseTimer &) = delete;
    PhaseTimer &operator=(const PhaseTimer &) = delete;

  private:
    PhaseTimes &times_;
    const std::size_t worker_;
    const EnginePhase phase_;
    std::chrono::steady_clock::time_point start_{};
};

} // namespace aqsim::stats

#endif // AQSIM_STATS_PHASE_TIMING_HH
