#include "stats/output.hh"

#include <iomanip>
#include <string>

#include "base/csv.hh"

namespace aqsim::stats
{

namespace
{

void
walkText(const Group &group, const std::string &prefix, std::ostream &out)
{
    const std::string path =
        prefix.empty() ? group.name() : prefix + "." + group.name();
    for (const auto &stat : group.statList()) {
        for (const auto &[label, value] : stat->rows()) {
            std::string full = path + "." + stat->name();
            if (!label.empty())
                full += "::" + label;
            out << std::left << std::setw(52) << full << ' '
                << std::setw(16) << std::setprecision(9) << value;
            if (!stat->desc().empty())
                out << " # " << stat->desc();
            out << '\n';
        }
    }
    for (const auto &child : group.children())
        walkText(*child, path, out);
}

void
walkCsv(const Group &group, const std::string &prefix, CsvWriter &csv)
{
    const std::string path =
        prefix.empty() ? group.name() : prefix + "." + group.name();
    for (const auto &stat : group.statList()) {
        for (const auto &[label, value] : stat->rows()) {
            csv.row()
                .field(path + "." + stat->name())
                .field(label)
                .field(value)
                .field(stat->desc());
        }
    }
    for (const auto &child : group.children())
        walkCsv(*child, path, csv);
}

} // namespace

void
dumpText(const Group &root, std::ostream &out)
{
    walkText(root, "", out);
}

void
dumpCsv(const Group &root, std::ostream &out)
{
    CsvWriter csv(out);
    csv.header({"path", "label", "value", "description"});
    walkCsv(root, "", csv);
}

} // namespace aqsim::stats
