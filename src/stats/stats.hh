/**
 * @file
 * gem5-flavoured statistics package.
 *
 * Components register named statistics inside a Group; groups nest to
 * form a tree (cluster -> node3 -> nic -> txBytes). The tree can be
 * dumped as aligned text or CSV (see stats/output.hh).
 *
 * Only the statistic kinds the simulator actually needs are provided:
 * Scalar (a counter/accumulator), Average (mean of samples), and the
 * bucketed types in stats/histogram.hh.
 */

#ifndef AQSIM_STATS_STATS_HH
#define AQSIM_STATS_STATS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace aqsim::stats
{

class Group;

/** Base class for a named, documented statistic. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    virtual ~Stat() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Render the value(s) as "label value" rows for text output. */
    virtual std::vector<std::pair<std::string, double>> rows() const = 0;

    /** Reset to the initial state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A scalar counter / accumulator. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator++()
    {
        value_ += 1.0;
        return *this;
    }

    Scalar &
    operator+=(double v)
    {
        value_ += v;
        return *this;
    }

    void set(double v) { value_ = v; }
    double value() const { return value_; }

    std::vector<std::pair<std::string, double>>
    rows() const override
    {
        return {{"", value_}};
    }

    void reset() override { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Mean / min / max over a stream of samples. */
class Average : public Stat
{
  public:
    using Stat::Stat;

    void sample(double v);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    std::vector<std::pair<std::string, double>> rows() const override;
    void reset() override;

  private:
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * A named container of statistics and child groups. Groups own their
 * stats; components hold references.
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    /** Create (and own) a statistic of type T in this group. */
    template <typename T, typename... CtorArgs>
    T &
    add(std::string name, std::string desc, CtorArgs &&...args)
    {
        auto stat = std::make_unique<T>(std::move(name), std::move(desc),
                                        std::forward<CtorArgs>(args)...);
        T &ref = *stat;
        stats_.push_back(std::move(stat));
        return ref;
    }

    /** Create (and own) a nested child group. */
    Group &addGroup(std::string name);

    const std::string &name() const { return name_; }
    const std::vector<std::unique_ptr<Stat>> &statList() const
    {
        return stats_;
    }
    const std::vector<std::unique_ptr<Group>> &children() const
    {
        return children_;
    }

    /** Find a stat by dotted path ("nic.txBytes"); nullptr if absent. */
    const Stat *find(const std::string &path) const;

    /** Reset this group's stats and all children recursively. */
    void resetAll();

  private:
    std::string name_;
    std::vector<std::unique_ptr<Stat>> stats_;
    std::vector<std::unique_ptr<Group>> children_;
};

} // namespace aqsim::stats

#endif // AQSIM_STATS_STATS_HH
