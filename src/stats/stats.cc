#include "stats/stats.hh"

#include <algorithm>

namespace aqsim::stats
{

void
Average::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

std::vector<std::pair<std::string, double>>
Average::rows() const
{
    return {
        {"mean", mean()},
        {"min", min()},
        {"max", max()},
        {"count", static_cast<double>(count_)},
    };
}

void
Average::reset()
{
    sum_ = min_ = max_ = 0.0;
    count_ = 0;
}

Group &
Group::addGroup(std::string name)
{
    children_.push_back(std::make_unique<Group>(std::move(name)));
    return *children_.back();
}

const Stat *
Group::find(const std::string &path) const
{
    auto dot = path.find('.');
    if (dot == std::string::npos) {
        for (const auto &stat : stats_)
            if (stat->name() == path)
                return stat.get();
        return nullptr;
    }
    const std::string head = path.substr(0, dot);
    const std::string tail = path.substr(dot + 1);
    for (const auto &child : children_)
        if (child->name() == head)
            return child->find(tail);
    return nullptr;
}

void
Group::resetAll()
{
    for (auto &stat : stats_)
        stat->reset();
    for (auto &child : children_)
        child->resetAll();
}

} // namespace aqsim::stats
