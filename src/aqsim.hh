/**
 * @file
 * Umbrella header: the aqsim public API in one include.
 *
 *     #include <aqsim.hh>
 *
 * brings in everything a downstream user needs to build and run
 * cluster-simulation experiments: cluster construction, quantum
 * policies, both execution engines, the workload library, tracing and
 * the experiment harness. Individual headers remain includable for
 * finer-grained dependencies.
 */

#ifndef AQSIM_AQSIM_HH
#define AQSIM_AQSIM_HH

// Fundamentals
#include "base/args.hh"
#include "base/csv.hh"
#include "base/debug.hh"
#include "base/logging.hh"
#include "base/random.hh"
#include "base/types.hh"

// Runtime invariant checking
#include "check/invariants.hh"

// Simulation kernel
#include "sim/event_queue.hh"
#include "sim/process.hh"

// Statistics
#include "stats/histogram.hh"
#include "stats/output.hh"
#include "stats/stats.hh"

// Network substrate
#include "net/network_controller.hh"
#include "net/packet.hh"
#include "net/switch_model.hh"
#include "net/topology.hh"

// Node substrate
#include "node/cpu_model.hh"
#include "node/host_cost_model.hh"
#include "node/nic_model.hh"
#include "node/node_simulator.hh"

// Message passing
#include "mpi/collectives.hh"
#include "mpi/communicator.hh"
#include "mpi/message.hh"

// The paper's contribution: adaptive quantum synchronization
#include "core/quantum_policy.hh"
#include "core/sync_stats.hh"
#include "core/synchronizer.hh"

// Execution engines
#include "engine/cluster.hh"
#include "engine/distributed_engine.hh"
#include "engine/run_result.hh"
#include "engine/sequential_engine.hh"
#include "engine/threaded_engine.hh"

// Workloads
#include "workloads/namd.hh"
#include "workloads/nas_cg.hh"
#include "workloads/nas_ep.hh"
#include "workloads/nas_is.hh"
#include "workloads/nas_lu.hh"
#include "workloads/nas_mg.hh"
#include "workloads/synthetic.hh"
#include "workloads/workload.hh"

// Tracing and visualization
#include "trace/ascii_plot.hh"
#include "trace/packet_trace.hh"
#include "trace/timeline.hh"

// Fault injection and chaos scenarios
#include "fault/chaos.hh"
#include "fault/fault_injector.hh"
#include "fault/peer_drill.hh"

// Inter-process transport (distributed engine substrate)
#include "transport/channel.hh"
#include "transport/frame.hh"
#include "transport/heartbeat.hh"
#include "transport/socket.hh"

// Self-healing run supervision
#include "supervise/escalation.hh"
#include "supervise/incident_log.hh"
#include "supervise/run_supervisor.hh"

// Experiment harness
#include "harness/experiment.hh"
#include "harness/pareto.hh"
#include "harness/report.hh"

#endif // AQSIM_AQSIM_HH
