/**
 * @file
 * Experiment harness: turn (workload, nodes, policy) into results,
 * with the paper's configuration set and ground-truth caching.
 *
 * The ground truth everywhere is the deterministic fixed 1 us quantum
 * (Q = T, the minimum network latency), exactly as in the paper's
 * Section 5: "the 1 us model is our baseline and the only
 * deterministically correct execution".
 */

#ifndef AQSIM_HARNESS_EXPERIMENT_HH
#define AQSIM_HARNESS_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/quantum_policy.hh"
#include "engine/cluster.hh"
#include "engine/run_result.hh"
#include "engine/sequential_engine.hh"
#include "supervise/run_supervisor.hh"
#include "trace/packet_trace.hh"

namespace aqsim::harness
{

/** The paper's evaluation network: 10 GB/s NIC, 1 us total latency,
 * perfect switch, 9000 B jumbo frames. */
net::NetworkParams paperNetwork();

/** Default cluster configuration for @p num_nodes. */
engine::ClusterParams defaultCluster(std::size_t num_nodes,
                                     std::uint64_t seed = 1);

/** Policy spec of the ground truth: "fixed:1us". */
extern const char *const groundTruthSpec;

/**
 * The largest provably safe (straggler-free) quantum for a network:
 * its minimum end-to-end latency T. For the paper's network this is
 * ~1 µs; higher-latency topologies allow proportionally larger
 * conservative quanta — the PDES lookahead observation.
 */
Tick safeQuantum(const net::NetworkParams &network,
                 std::size_t num_nodes);

/** A named policy configuration, as labelled in the paper's charts. */
struct PolicyConfig
{
    std::string label; // e.g. "10", "1k", "dyn 1k 1.03:0.02"
    std::string spec;  // parsePolicy() input
};

/** The five comparison configs of Figs. 6-8 (fixed 10/100/1000 us,
 * dyn 1.03:0.02, dyn 1.05:0.02). */
std::vector<PolicyConfig> paperConfigs();

/** One experiment request. */
struct ExperimentConfig
{
    std::string workload;
    std::size_t numNodes = 2;
    double scale = 1.0;
    std::string policySpec = "fixed:1us";
    std::uint64_t seed = 1;
    bool recordTimeline = false;
    bool recordTrace = false;
    /** Engine selection (sequential, threaded, or the multi-process
     * distributed engine). Distributed runs ignore recordTrace: the
     * controller executing packets lives in the worker processes. */
    supervise::EngineKind engineKind =
        supervise::EngineKind::Sequential;
    engine::EngineOptions engine;
    /**
     * Self-healing supervision (off by default: one plain engine
     * run). When enabled, failures restore from the newest good
     * checkpoint and retry within the restart budget; see
     * docs/supervision.md.
     */
    supervise::SuperviseOptions supervise;
};

/** Result bundle: the run plus the optional packet trace. */
struct ExperimentOutput
{
    engine::RunResult result;
    trace::PacketTrace trace;
};

/**
 * Execute one experiment on the selected engine, routed through the
 * run supervisor (the harness's only path to an engine; a disabled
 * supervisor degenerates to one plain run).
 */
ExperimentOutput runExperiment(const ExperimentConfig &config);

/**
 * Caches ground-truth runs so a sweep over many policies pays for the
 * expensive 1 us baseline once per (workload, nodes).
 */
class Harness
{
  public:
    explicit Harness(double scale = 1.0, std::uint64_t seed = 1);

    /** Ground-truth result for (workload, nodes), cached. */
    const engine::RunResult &groundTruth(const std::string &workload,
                                         std::size_t num_nodes);

    /** Run a policy configuration (no timeline/trace). */
    engine::RunResult run(const std::string &workload,
                          std::size_t num_nodes,
                          const std::string &policy_spec,
                          bool record_timeline = false);

    /** Accuracy error vs. the cached ground truth. */
    double error(const engine::RunResult &run);

    /** Host speedup vs. the cached ground truth. */
    double speedup(const engine::RunResult &run);

    double scale() const { return scale_; }
    std::uint64_t seed() const { return seed_; }

  private:
    double scale_;
    std::uint64_t seed_;
    std::map<std::pair<std::string, std::size_t>, engine::RunResult>
        groundTruths_;
};

/**
 * Harmonic mean (the paper's NAS aggregation: "NAS results are
 * provided in MOPS and aggregated through a harmonic mean").
 */
double harmonicMean(const std::vector<double> &values);

} // namespace aqsim::harness

#endif // AQSIM_HARNESS_EXPERIMENT_HH
