/**
 * @file
 * Pareto-front extraction for the speed/accuracy tradeoff (paper
 * Fig. 8): a point is Pareto-optimal "if there is no other point that
 * performs at least as well on one criterion (accuracy error or
 * simulation speedup) and strictly better on the other".
 */

#ifndef AQSIM_HARNESS_PARETO_HH
#define AQSIM_HARNESS_PARETO_HH

#include <cstddef>
#include <string>
#include <vector>

namespace aqsim::harness
{

/** One (configuration x workload) point in the tradeoff plane. */
struct TradeoffPoint
{
    std::string label;
    /** Relative accuracy error (smaller is better). */
    double error = 0.0;
    /** Host speedup over the ground truth (larger is better). */
    double speedup = 1.0;
};

/**
 * @return indices of Pareto-optimal points (minimal error, maximal
 * speedup), sorted by increasing error.
 */
std::vector<std::size_t>
paretoFront(const std::vector<TradeoffPoint> &points);

/** @return true if points[index] is on the Pareto front. */
bool isParetoOptimal(const std::vector<TradeoffPoint> &points,
                     std::size_t index);

} // namespace aqsim::harness

#endif // AQSIM_HARNESS_PARETO_HH
