#include "harness/report.hh"

#include <algorithm>
#include <cstdio>

#include "base/csv.hh"
#include "base/logging.hh"

namespace aqsim::harness
{

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns))
{
    AQSIM_ASSERT(!columns_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    AQSIM_ASSERT(cells.size() == columns_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &out) const
{
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c)
        widths[c] = columns_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out << cells[c]
                << std::string(widths[c] - cells[c].size() + 2, ' ');
        }
        out << '\n';
    };
    emit(columns_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &out) const
{
    CsvWriter csv(out);
    csv.header(columns_);
    for (const auto &row : rows_) {
        auto &r = csv.row();
        for (const auto &cell : row)
            r.field(cell);
    }
}

std::string
fmtPercent(double fraction)
{
    char buf[32];
    if (fraction >= 9.995)
        std::snprintf(buf, sizeof(buf), "%.0f%%", fraction * 100.0);
    else if (fraction >= 0.0995)
        std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
    else
        std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
    return buf;
}

std::string
fmtSpeedup(double x)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fx", x);
    return buf;
}

std::string
fmtDouble(double x, int prec)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, x);
    return buf;
}

std::string
fmtRatio(double x)
{
    char buf[32];
    if (x >= 20.0)
        std::snprintf(buf, sizeof(buf), "%.0fx", x);
    else
        std::snprintf(buf, sizeof(buf), "%.2fx", x);
    return buf;
}

} // namespace aqsim::harness
