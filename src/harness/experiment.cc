#include "harness/experiment.hh"

#include "base/logging.hh"
#include "workloads/workload.hh"

namespace aqsim::harness
{

const char *const groundTruthSpec = "fixed:1us";

net::NetworkParams
paperNetwork()
{
    net::NetworkParams params;
    // "We model a 10GB/s NIC with a minimum latency of 1us, a perfect
    // switch with infinite bandwidth and zero latency, and jumbo
    // Ethernet packets (9000 Bytes)."
    params.nic.txLatency = 500;
    params.nic.rxLatency = 500;
    params.nic.bytesPerNs = 10.0;
    params.nic.mtu = 9000;
    params.nic.txOverhead = 100;
    params.switchModel = nullptr; // PerfectSwitch
    return params;
}

engine::ClusterParams
defaultCluster(std::size_t num_nodes, std::uint64_t seed)
{
    engine::ClusterParams params;
    params.numNodes = num_nodes;
    params.network = paperNetwork();
    params.cpu.opsPerNs = 2.6; // 2.6 GHz Opteron at IPC 1
    params.seed = seed;
    return params;
}

Tick
safeQuantum(const net::NetworkParams &network, std::size_t num_nodes)
{
    stats::Group scratch("probe");
    net::NetworkController controller(num_nodes, network, scratch);
    return controller.minNetworkLatency();
}

std::vector<PolicyConfig>
paperConfigs()
{
    return {
        {"10", "fixed:10us"},
        {"100", "fixed:100us"},
        {"1k", "fixed:1000us"},
        {"dyn 1k 1.03:0.02", "dyn:1.03:0.02:1us:1000us"},
        {"dyn 1k 1.05:0.02", "dyn:1.05:0.02:1us:1000us"},
    };
}

ExperimentOutput
runExperiment(const ExperimentConfig &config)
{
    auto workload = workloads::makeWorkload(config.workload,
                                            config.numNodes,
                                            config.scale);
    auto policy = core::parsePolicy(config.policySpec);

    auto cluster_params = defaultCluster(config.numNodes, config.seed);
    engine::EngineOptions options = config.engine;
    options.recordTimeline = config.recordTimeline;

    ExperimentOutput out;
    supervise::RunRequest request;
    request.engineKind = config.engineKind;
    request.engine = options;
    request.cluster = cluster_params;
    request.workload = workload.get();
    request.policy = policy.get();
    if (config.recordTrace &&
        config.engineKind != supervise::EngineKind::Distributed)
        request.onClusterBuilt = [&out](engine::Cluster &cluster) {
            out.trace.attach(cluster.controller());
        };

    supervise::RunSupervisor supervisor(config.supervise);
    out.result = supervisor.run(request);
    return out;
}

Harness::Harness(double scale, std::uint64_t seed)
    : scale_(scale), seed_(seed)
{}

const engine::RunResult &
Harness::groundTruth(const std::string &workload, std::size_t num_nodes)
{
    const auto key = std::make_pair(workload, num_nodes);
    auto it = groundTruths_.find(key);
    if (it == groundTruths_.end()) {
        ExperimentConfig config;
        config.workload = workload;
        config.numNodes = num_nodes;
        config.scale = scale_;
        config.policySpec = groundTruthSpec;
        config.seed = seed_;
        it = groundTruths_
                 .emplace(key, runExperiment(config).result)
                 .first;
    }
    return it->second;
}

engine::RunResult
Harness::run(const std::string &workload, std::size_t num_nodes,
             const std::string &policy_spec, bool record_timeline)
{
    ExperimentConfig config;
    config.workload = workload;
    config.numNodes = num_nodes;
    config.scale = scale_;
    config.policySpec = policy_spec;
    config.seed = seed_;
    config.recordTimeline = record_timeline;
    return runExperiment(config).result;
}

double
Harness::error(const engine::RunResult &run)
{
    return engine::accuracyError(
        run, groundTruth(run.workload, run.numNodes));
}

double
Harness::speedup(const engine::RunResult &run)
{
    return engine::speedup(run,
                           groundTruth(run.workload, run.numNodes));
}

double
harmonicMean(const std::vector<double> &values)
{
    AQSIM_ASSERT(!values.empty());
    double denom = 0.0;
    for (double v : values) {
        AQSIM_ASSERT(v > 0.0);
        denom += 1.0 / v;
    }
    return static_cast<double>(values.size()) / denom;
}

} // namespace aqsim::harness
