#include "harness/pareto.hh"

#include <algorithm>

namespace aqsim::harness
{

bool
isParetoOptimal(const std::vector<TradeoffPoint> &points,
                std::size_t index)
{
    const TradeoffPoint &p = points[index];
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (i == index)
            continue;
        const TradeoffPoint &q = points[i];
        const bool at_least_as_good =
            q.error <= p.error && q.speedup >= p.speedup;
        const bool strictly_better =
            q.error < p.error || q.speedup > p.speedup;
        if (at_least_as_good && strictly_better)
            return false;
    }
    return true;
}

std::vector<std::size_t>
paretoFront(const std::vector<TradeoffPoint> &points)
{
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < points.size(); ++i)
        if (isParetoOptimal(points, i))
            front.push_back(i);
    std::sort(front.begin(), front.end(),
              [&](std::size_t a, std::size_t b) {
                  if (points[a].error != points[b].error)
                      return points[a].error < points[b].error;
                  return points[a].speedup < points[b].speedup;
              });
    return front;
}

} // namespace aqsim::harness
