/**
 * @file
 * Table rendering for the benchmark harnesses: fixed-width text tables
 * matching the layout of the paper's figures, with optional CSV
 * emission for plotting.
 */

#ifndef AQSIM_HARNESS_REPORT_HH
#define AQSIM_HARNESS_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

namespace aqsim::harness
{

/** A simple fixed-width table builder. */
class Table
{
  public:
    explicit Table(std::vector<std::string> columns);

    /** Append one row; cell count must equal the column count. */
    void addRow(std::vector<std::string> cells);

    /** Render as aligned text. */
    void print(std::ostream &out) const;

    /** Render as CSV. */
    void printCsv(std::ostream &out) const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format helpers. */
std::string fmtPercent(double fraction);   // 0.034 -> "3.4%"
std::string fmtSpeedup(double x);          // 26.3 -> "26.3x"
std::string fmtDouble(double x, int prec); // generic
std::string fmtRatio(double x);            // 150.2 -> "150x"

} // namespace aqsim::harness

#endif // AQSIM_HARNESS_REPORT_HH
