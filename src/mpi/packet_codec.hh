/**
 * @file
 * Wire codec for net::Packet (distributed-engine exchange frames).
 *
 * Cross-partition deliveries travel between worker processes as
 * ordered packet runs inside Exchange/Deliver frames. This codec
 * round-trips every field the simulation reads — timing, identity,
 * corruption flag, and the polymorphic mpi payload — through the
 * ckpt::Writer/Reader encoding, so a decoded packet is functionally
 * indistinguishable from the original: reassembly, rendezvous
 * control, checksum verification, and the merge keys
 * (idealArrival, departTick, src) all behave bit-identically.
 *
 * Payload objects are duplicated by value across the wire (the
 * in-process shared_ptr aliasing is an optimization, not semantics:
 * receivers read payload fields, never pointer identity).
 */

#ifndef AQSIM_MPI_PACKET_CODEC_HH
#define AQSIM_MPI_PACKET_CODEC_HH

#include "ckpt/ckpt_io.hh"
#include "net/packet.hh"

namespace aqsim::mpi
{

/** Serialize one packet (all fields + payload) into @p w. */
void putPacket(ckpt::Writer &w, const net::Packet &pkt);

/**
 * Decode one packet written with putPacket(). On malformed input the
 * reader latches its error and the result is null.
 */
net::PacketPtr getPacket(ckpt::Reader &r);

} // namespace aqsim::mpi

#endif // AQSIM_MPI_PACKET_CODEC_HH
