#include "mpi/packet_codec.hh"

#include <memory>

#include "mpi/message.hh"

namespace aqsim::mpi
{

namespace
{

/** Payload discriminator tag on the wire. */
enum : std::uint8_t
{
    payloadNone = 0,
    payloadFragment = 1,
    payloadControl = 2,
};

void
putHeader(ckpt::Writer &w, const MsgHeader &h)
{
    // Explicit field order: this codec owns its layout (the checkpoint
    // serialize() path is free to evolve independently).
    w.u64(h.msgId);
    w.u32(h.src);
    w.u32(h.dst);
    w.i32(h.tag);
    w.u64(h.bytes);
    w.u64(h.seq);
    w.u64(h.sendTick);
    w.u64(h.checksum);
}

MsgHeader
getHeader(ckpt::Reader &r)
{
    MsgHeader h;
    h.msgId = r.u64();
    h.src = r.u32();
    h.dst = r.u32();
    h.tag = r.i32();
    h.bytes = r.u64();
    h.seq = r.u64();
    h.sendTick = r.u64();
    h.checksum = r.u64();
    return h;
}

} // namespace

void
putPacket(ckpt::Writer &w, const net::Packet &pkt)
{
    w.u64(pkt.id);
    w.u32(pkt.src);
    w.u32(pkt.dst);
    w.u32(pkt.bytes);
    w.u64(pkt.sendTick);
    w.u64(pkt.departTick);
    w.u64(pkt.idealArrival);
    w.boolean(pkt.corrupted);
    if (const auto *frag =
            dynamic_cast<const FragmentPayload *>(pkt.payload.get())) {
        w.u8(payloadFragment);
        putHeader(w, frag->header);
        w.u32(frag->fragIndex);
        w.u32(frag->numFrags);
    } else if (const auto *ctl = dynamic_cast<const ControlPayload *>(
                   pkt.payload.get())) {
        w.u8(payloadControl);
        w.u8(static_cast<std::uint8_t>(ctl->kind));
        putHeader(w, ctl->header);
        w.u32(ctl->progress);
    } else {
        w.u8(payloadNone);
    }
}

net::PacketPtr
getPacket(ckpt::Reader &r)
{
    auto pkt = std::make_shared<net::Packet>();
    pkt->id = r.u64();
    pkt->src = r.u32();
    pkt->dst = r.u32();
    pkt->bytes = r.u32();
    pkt->sendTick = r.u64();
    pkt->departTick = r.u64();
    pkt->idealArrival = r.u64();
    pkt->corrupted = r.boolean();
    const std::uint8_t tag = r.u8();
    switch (tag) {
    case payloadNone:
        break;
    case payloadFragment: {
        const MsgHeader h = getHeader(r);
        const std::uint32_t index = r.u32();
        const std::uint32_t total = r.u32();
        pkt->payload =
            std::make_shared<FragmentPayload>(h, index, total);
        break;
    }
    case payloadControl: {
        const std::uint8_t kind = r.u8();
        if (kind > static_cast<std::uint8_t>(ControlPayload::Kind::Rack)) {
            r.fail("bad control-payload kind");
            return nullptr;
        }
        const MsgHeader h = getHeader(r);
        const std::uint32_t progress = r.u32();
        pkt->payload = std::make_shared<ControlPayload>(
            static_cast<ControlPayload::Kind>(kind), h, progress);
        break;
    }
    default:
        r.fail("bad payload tag");
        return nullptr;
    }
    if (!r.ok())
        return nullptr;
    return pkt;
}

} // namespace aqsim::mpi
