#include "mpi/communicator.hh"

#include <algorithm>

#include "base/debug.hh"
#include "base/logging.hh"
#include "ckpt/ckpt_io.hh"

namespace aqsim::mpi
{

void
RecvAwaitable::await_suspend(std::coroutine_handle<> h)
{
    ep_.postRecv(this, h);
}

RecvRequest::RecvRequest(Endpoint &ep, int src, int tag)
    : ep_(ep), state_(std::make_shared<State>())
{
    ep_.postRequest(state_, src, tag);
}

RecvRequest::~RecvRequest()
{
    if (!state_->completed)
        ep_.cancelRequest(state_);
}

void
RecvRequest::await_suspend(std::coroutine_handle<> h)
{
    AQSIM_ASSERT(!state_->waiter); // single joiner
    state_->waiter = h;
}

Endpoint::Endpoint(Rank rank, std::size_t num_ranks,
                   node::NodeSimulator &node, EndpointParams params)
    : rank_(rank), numRanks_(num_ranks), node_(node),
      queue_(node.queue()), params_(params), sendSeq_(num_ranks, 0),
      unexpectedBySrc_(num_ranks), pendingRts_(num_ranks),
      mpiStats_(node.statsGroup().addGroup("mpi")),
      statMsgsSent_(mpiStats_.add<stats::Scalar>(
          "msgsSent", "messages sent")),
      statBytesSent_(mpiStats_.add<stats::Scalar>(
          "bytesSent", "message payload bytes sent")),
      statMsgsRecvd_(mpiStats_.add<stats::Scalar>(
          "msgsRecvd", "messages received and matched")),
      statRendezvous_(mpiStats_.add<stats::Scalar>(
          "rendezvous", "messages using the RTS/CTS protocol")),
      statUnexpected_(mpiStats_.add<stats::Scalar>(
          "unexpectedHits", "receives satisfied from the unexpected "
                            "queue")),
      statRetransmits_(mpiStats_.add<stats::Scalar>(
          "retransmits", "reliable-mode retransmission timeouts")),
      statLatency_(mpiStats_.add<stats::Log2Distribution>(
          "messageLatency",
          "ticks from application send to full arrival"))
{
    AQSIM_ASSERT(rank < num_ranks);
    if (params_.reliable) {
        if (params_.retryTimeout == 0)
            fatal("mpi: reliable mode needs retryTimeout > 0");
        if (params_.retryBackoff < 1.0)
            fatal("mpi: retryBackoff must be >= 1.0 (got %f)",
                  params_.retryBackoff);
        if (params_.maxRetries == 0)
            fatal("mpi: reliable mode needs maxRetries >= 1");
    }
    node_.nic().setRxHandler(
        [this](const net::PacketPtr &pkt) { handleRx(pkt); });
}

std::uint32_t
Endpoint::framePayload() const
{
    const auto &nic = node_.nic().params();
    AQSIM_ASSERT(nic.mtu > params_.frameOverhead);
    return nic.mtu - params_.frameOverhead;
}

int
Endpoint::nextCollectiveTag()
{
    // High tag space reserved for collectives; user tags stay below.
    constexpr int collective_base = 1 << 20;
    return collective_base + collectiveTagCounter_++;
}

sim::Process
Endpoint::send(Rank dst, int tag, std::uint64_t bytes)
{
    AQSIM_ASSERT(dst < numRanks_ && dst != rank_);
    AQSIM_ASSERT(tag >= 0);

    // Identity is assigned when the coroutine body first runs (at
    // start()), so sequence numbers follow program order even when
    // sends are forked.
    MsgHeader hdr;
    hdr.msgId = (static_cast<std::uint64_t>(rank_ + 1) << 40) |
                nextMsgId_++;
    hdr.src = rank_;
    hdr.dst = dst;
    hdr.tag = tag;
    hdr.bytes = bytes;
    hdr.seq = sendSeq_[dst]++;
    hdr.sendTick = queue_.now();
    hdr.seal();

    ++messagesSent_;
    ++statMsgsSent_;
    statBytesSent_ += static_cast<double>(bytes);

    // Software overhead plus staging copy into the transport.
    const auto copy = static_cast<Tick>(
        static_cast<double>(bytes) / params_.copyBytesPerNs);
    co_await sim::DelayAwaitable(queue_, params_.sendOverhead + copy);

    const std::uint32_t num_frags =
        fragmentCount(hdr.bytes, framePayload());

    if (bytes <= params_.eagerThreshold) {
        // Eager: fire and forget; local completion semantics. In
        // reliable mode the retransmit timer keeps running in the
        // background until the receiver's Rack arrives.
        transmitData(hdr);
        if (params_.reliable)
            armRetry(trackRetry(hdr, num_frags, false));
        co_return;
    }

    // Rendezvous: announce, wait for the receiver's clear-to-send,
    // then stream the data window by window (stalling on the
    // receiver's flow-control ACK between windows) and block until it
    // has drained onto the wire (MPI_Send completion semantics).
    ++rendezvousCount_;
    ++statRendezvous_;
    auto trigger = std::make_unique<sim::Trigger>(queue_);
    sim::Trigger *cts = trigger.get();
    ctsWaiters_.emplace(hdr.msgId, std::move(trigger));
    if (params_.reliable)
        armRetry(trackRetry(hdr, num_frags, true));
    sendControl(ControlPayload::Kind::Rts, hdr, dst);

    co_await cts->wait();

    const std::uint32_t window = windowFragments();
    for (std::uint32_t first = 0; first < num_frags;
         first += window) {
        const std::uint32_t last =
            std::min(num_frags, first + window);
        if (params_.reliable) {
            // Point the retry timer at this window before it goes on
            // the wire.
            auto &st = txRetry_.at(hdr.msgId);
            st.awaitingCts = false;
            st.winFirst = first;
            st.winLast = last;
            st.retries = 0;
            st.timeout = params_.retryTimeout;
            armRetry(st);
        }
        transmitFragments(hdr, first, last, num_frags);
        if (last < num_frags) {
            // Stall until the receiver acknowledges this window: only
            // an Ack confirming exactly `last` cumulative fragments
            // releases us (stale re-Acks of earlier boundaries are
            // ignored by handleAck).
            auto ack = std::make_unique<sim::Trigger>(queue_);
            sim::Trigger *ack_ptr = ack.get();
            ackWaiters_[hdr.msgId] = AckWaiter{std::move(ack), last};
            co_await ack_ptr->wait();
        }
    }
    const Tick busy_until = node_.nic().txBusyUntil();
    if (busy_until > queue_.now())
        co_await sim::DelayAwaitable(queue_, busy_until - queue_.now());
}

void
Endpoint::sendControl(ControlPayload::Kind kind, const MsgHeader &header,
                      Rank to, std::uint32_t progress)
{
    node_.nic().send(to, params_.ctrlFrameBytes,
                     std::make_shared<ControlPayload>(kind, header,
                                                     progress));
}

std::uint32_t
Endpoint::windowFragments() const
{
    return std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(params_.ackWindowBytes /
                                      framePayload()));
}

void
Endpoint::transmitData(const MsgHeader &header)
{
    const std::uint32_t num_frags =
        fragmentCount(header.bytes, framePayload());
    transmitFragments(header, 0, num_frags, num_frags);
}

void
Endpoint::transmitFragments(const MsgHeader &header, std::uint32_t first,
                            std::uint32_t last, std::uint32_t num_frags)
{
    const std::uint32_t payload_cap = framePayload();
    for (std::uint32_t i = first; i < last; ++i) {
        // The final fragment carries the remainder.
        const std::uint64_t offset =
            static_cast<std::uint64_t>(i) * payload_cap;
        const auto in_frame = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(header.bytes - offset,
                                    payload_cap));
        node_.nic().send(
            header.dst, in_frame + params_.frameOverhead,
            std::make_shared<FragmentPayload>(header, i, num_frags));
    }
}

Endpoint::TxRetryState &
Endpoint::trackRetry(const MsgHeader &header, std::uint32_t num_frags,
                     bool awaiting_cts)
{
    TxRetryState st;
    st.header = header;
    st.numFrags = num_frags;
    st.winFirst = 0;
    st.winLast = num_frags;
    st.awaitingCts = awaiting_cts;
    st.timeout = params_.retryTimeout;
    auto [it, inserted] = txRetry_.emplace(header.msgId, st);
    AQSIM_ASSERT(inserted);
    return it->second;
}

void
Endpoint::armRetry(TxRetryState &st)
{
    cancelRetry(st);
    const std::uint64_t msg_id = st.header.msgId;
    st.timer = queue_.scheduleIn(
        st.timeout, [this, msg_id] { onRetryTimeout(msg_id); },
        sim::Priority::Late);
}

void
Endpoint::cancelRetry(TxRetryState &st)
{
    if (st.timer != sim::EventQueue::invalidEvent) {
        queue_.deschedule(st.timer);
        st.timer = sim::EventQueue::invalidEvent;
    }
}

void
Endpoint::onRetryTimeout(std::uint64_t msg_id)
{
    auto it = txRetry_.find(msg_id);
    if (it == txRetry_.end())
        return; // acknowledged in the meantime
    auto &st = it->second;
    st.timer = sim::EventQueue::invalidEvent;
    if (++st.retries > params_.maxRetries)
        fatal("mpi: rank %u gave up on msg %llu to rank %u after %u "
              "retries; the network is lossier than "
              "retryTimeout/maxRetries can absorb",
              rank_, static_cast<unsigned long long>(msg_id),
              st.header.dst, params_.maxRetries);
    ++retransmits_;
    ++statRetransmits_;
    AQSIM_DPRINTF(Mpi, queue_.now(), "mpi",
                  "rank %u retry %u for msg %llu (%s)", rank_,
                  st.retries, static_cast<unsigned long long>(msg_id),
                  st.awaitingCts ? "RTS" : "window");
    if (st.awaitingCts)
        sendControl(ControlPayload::Kind::Rts, st.header,
                    st.header.dst);
    else
        transmitFragments(st.header, st.winFirst, st.winLast,
                          st.numFrags);
    st.timeout = static_cast<Tick>(static_cast<double>(st.timeout) *
                                   params_.retryBackoff);
    armRetry(st);
}

void
Endpoint::handleRx(const net::PacketPtr &pkt)
{
    AQSIM_ASSERT(pkt->payload != nullptr);
    if (pkt->corrupted) {
        // Link-layer CRC failure: the frame is discarded before any
        // protocol processing. Reliable mode recovers through the
        // sender's retransmit timer; without it the loss is permanent,
        // exactly like a dropped frame.
        ++corruptDropped_;
        return;
    }
    if (auto frag = std::dynamic_pointer_cast<const FragmentPayload>(
            pkt->payload)) {
        handleFragment(*frag);
        return;
    }
    if (auto ctrl = std::dynamic_pointer_cast<const ControlPayload>(
            pkt->payload)) {
        switch (ctrl->kind) {
          case ControlPayload::Kind::Rts:
            handleRts(ctrl->header);
            break;
          case ControlPayload::Kind::Cts:
            handleCts(ctrl->header);
            break;
          case ControlPayload::Kind::Ack:
            handleAck(*ctrl);
            break;
          case ControlPayload::Kind::Rack:
            handleRack(ctrl->header);
            break;
        }
        return;
    }
    panic("endpoint %u received a frame with unknown payload type",
          rank_);
}

void
Endpoint::handleFragment(const FragmentPayload &frag)
{
    if (params_.reliable &&
        deliveredMsgIds_.count(frag.header.msgId)) {
        // A retransmit of a message we already delivered: the Rack was
        // lost. Re-acknowledge without resurrecting reassembly state
        // (the message must not complete twice).
        sendControl(ControlPayload::Kind::Rack, frag.header,
                    frag.header.src);
        return;
    }

    auto [it, inserted] =
        rxBuffers_.try_emplace(frag.header.msgId, frag.header);
    const auto result = it->second.addFragment(frag);
    const std::uint32_t received = it->second.received();
    const std::uint32_t window = windowFragments();

    if (result == RxBuffer::AddResult::Duplicate) {
        // A retransmitted window whose original flow-control Ack was
        // lost: the duplicate of the window's final fragment triggers
        // exactly one repeat Ack so the sender can move on.
        if (frag.header.bytes > params_.eagerThreshold &&
            frag.numFrags > window && received % window == 0 &&
            frag.fragIndex + 1 == received)
            sendControl(ControlPayload::Kind::Ack, frag.header,
                        frag.header.src, received);
        return;
    }

    if (result == RxBuffer::AddResult::Complete) {
        const MsgHeader header = it->second.header();
        rxBuffers_.erase(it);
        ackProgress_.erase(header.msgId);
        if (params_.reliable) {
            deliveredMsgIds_.insert(header.msgId);
            sendControl(ControlPayload::Kind::Rack, header,
                        header.src);
        }
        messageComplete(header);
        return;
    }
    // Flow control: acknowledge every completed transport window of a
    // multi-window rendezvous message so the sender can release the
    // next one (eager messages are below the window size and are
    // never acknowledged).
    if (frag.header.bytes > params_.eagerThreshold &&
        frag.numFrags > window && received % window == 0) {
        auto &acked = ackProgress_[frag.header.msgId];
        if (received > acked) {
            acked = received;
            sendControl(ControlPayload::Kind::Ack, frag.header,
                        frag.header.src, received);
        }
    }
}

void
Endpoint::handleAck(const ControlPayload &ctrl)
{
    const MsgHeader &header = ctrl.header;
    AQSIM_DPRINTF(Mpi, queue_.now(), "mpi",
                  "rank %u got window ACK msg=%llu progress=%u",
                  rank_, static_cast<unsigned long long>(header.msgId),
                  ctrl.progress);
    auto it = ackWaiters_.find(header.msgId);
    if (it == ackWaiters_.end()) {
        if (params_.reliable)
            return; // duplicate of an Ack we already consumed
        panic("endpoint %u got ACK for unknown msg %llu", rank_,
              static_cast<unsigned long long>(header.msgId));
    }
    if (ctrl.progress != it->second.expected) {
        // A repeat Ack for a boundary this sender already crossed
        // (the retransmit hole-fill and the trailing duplicate of a
        // window's last fragment each generate one). Releasing the
        // current window on it would let the stream run ahead of the
        // retry state and strand holes the timer never re-covers.
        if (params_.reliable)
            return;
        panic("endpoint %u got ACK for msg %llu at progress %u while "
              "waiting for %u",
              rank_, static_cast<unsigned long long>(header.msgId),
              ctrl.progress, it->second.expected);
    }
    it->second.trigger->fire();
    ackWaiters_.erase(it);
}

void
Endpoint::handleRack(const MsgHeader &header)
{
    AQSIM_DPRINTF(Mpi, queue_.now(), "mpi",
                  "rank %u got delivery ACK msg=%llu",
                  rank_, static_cast<unsigned long long>(header.msgId));
    auto it = txRetry_.find(header.msgId);
    if (it == txRetry_.end())
        return; // duplicate Rack; retry state already retired
    cancelRetry(it->second);
    txRetry_.erase(it);
}

void
Endpoint::messageComplete(const MsgHeader &header)
{
    AQSIM_ASSERT(header.dst == rank_);
    Message msg;
    msg.src = header.src;
    msg.tag = header.tag;
    msg.bytes = header.bytes;
    msg.completedAt = queue_.now();
    msg.sentAt = header.sendTick;
    AQSIM_ASSERT(msg.completedAt >= header.sendTick);
    statLatency_.sample(msg.completedAt - header.sendTick);

    // Pass 1: a recv bound to exactly this rendezvous message.
    for (std::size_t i = 0; i < posted_.size(); ++i) {
        if (posted_[i].boundMsgId == header.msgId) {
            PostedRecv rec = posted_[i];
            posted_.erase(posted_.begin() +
                          static_cast<std::ptrdiff_t>(i));
            finishRecv(rec, msg);
            return;
        }
    }
    // Pass 2: the earliest-posted unbound recv that matches.
    for (std::size_t i = 0; i < posted_.size(); ++i) {
        if (posted_[i].boundMsgId == 0 &&
            matches(posted_[i], header.src, header.tag)) {
            PostedRecv rec = posted_[i];
            posted_.erase(posted_.begin() +
                          static_cast<std::ptrdiff_t>(i));
            finishRecv(rec, msg);
            return;
        }
    }
    // No match: store as unexpected.
    unexpectedBySrc_[header.src].emplace(header.seq, msg);
    unexpectedOrder_.emplace_back(header.src, header.seq);
}

void
Endpoint::handleRts(const MsgHeader &header)
{
    AQSIM_DPRINTF(Mpi, queue_.now(), "mpi",
                  "rank %u got RTS msg=%llu from %u (%llu bytes)",
                  rank_, static_cast<unsigned long long>(header.msgId),
                  header.src,
                  static_cast<unsigned long long>(header.bytes));
    // Duplicate-announcement guards: the fault layer can replicate an
    // RTS frame, and reliable mode retransmits one whose CTS was lost.
    // A duplicate must never bind a second receive.
    if (deliveredMsgIds_.count(header.msgId)) {
        // Ancient duplicate: the message has long since completed.
        sendControl(ControlPayload::Kind::Rack, header, header.src);
        return;
    }
    for (const auto &rec : posted_) {
        if (rec.boundMsgId == header.msgId) {
            // Our CTS was lost; the sender is asking again.
            sendControl(ControlPayload::Kind::Cts, header, header.src);
            return;
        }
    }
    if (rxBuffers_.count(header.msgId))
        return; // data already flowing; the handshake succeeded
    if (pendingRts_[header.src].count(header.seq))
        return; // announcement already queued for a future recv
    // Bind the earliest matching unbound posted recv, if any.
    for (auto &rec : posted_) {
        if (rec.boundMsgId == 0 &&
            matches(rec, header.src, header.tag)) {
            rec.boundMsgId = header.msgId;
            sendControl(ControlPayload::Kind::Cts, header, header.src);
            return;
        }
    }
    pendingRts_[header.src].emplace(header.seq, header);
    pendingRtsOrder_.emplace_back(header.src, header.seq);
}

void
Endpoint::handleCts(const MsgHeader &header)
{
    AQSIM_DPRINTF(Mpi, queue_.now(), "mpi",
                  "rank %u got CTS msg=%llu",
                  rank_, static_cast<unsigned long long>(header.msgId));
    auto it = ctsWaiters_.find(header.msgId);
    if (it == ctsWaiters_.end()) {
        if (params_.reliable)
            return; // duplicate CTS; the handshake already completed
        panic("endpoint %u got CTS for unknown msg %llu", rank_,
              static_cast<unsigned long long>(header.msgId));
    }
    if (params_.reliable) {
        // Stop the RTS retry clock; the send coroutine re-arms the
        // timer per data window once it resumes.
        auto rit = txRetry_.find(header.msgId);
        if (rit != txRetry_.end()) {
            rit->second.awaitingCts = false;
            rit->second.retries = 0;
            rit->second.timeout = params_.retryTimeout;
            cancelRetry(rit->second);
        }
    }
    it->second->fire();
    ctsWaiters_.erase(it);
}

bool
Endpoint::matches(const PostedRecv &recv, Rank src, int tag)
{
    return (recv.src == anySource ||
            recv.src == static_cast<int>(src)) &&
           (recv.tag == anyTag || recv.tag == tag);
}

void
Endpoint::finishRecv(PostedRecv &recv, const Message &msg)
{
    AQSIM_DPRINTF(Mpi, queue_.now(), "mpi",
                  "rank %u matched msg from %u tag=%d (%llu bytes)",
                  rank_, msg.src, msg.tag,
                  static_cast<unsigned long long>(msg.bytes));
    ++messagesReceived_;
    ++statMsgsRecvd_;
    if (recv.request) {
        // Non-blocking receive: complete the shared state after the
        // software overhead; resume a joiner if one is waiting.
        auto state = recv.request;
        Message completed = msg;
        queue_.scheduleIn(params_.recvOverhead, [state, completed] {
            state->completed = true;
            state->message = completed;
            if (state->waiter)
                state->waiter.resume();
        });
        return;
    }
    recv.awaitable->result_ = msg;
    const auto h = recv.waiter;
    queue_.scheduleIn(params_.recvOverhead, [h] { h.resume(); });
}

void
Endpoint::postRecv(RecvAwaitable *aw, std::coroutine_handle<> h)
{
    PostedRecv rec;
    rec.src = aw->src_;
    rec.tag = aw->tag_;
    rec.awaitable = aw;
    rec.waiter = h;
    postCommon(std::move(rec));
}

void
Endpoint::postRequest(std::shared_ptr<RecvRequest::State> state,
                      int src, int tag)
{
    PostedRecv rec;
    rec.src = src;
    rec.tag = tag;
    rec.request = std::move(state);
    postCommon(std::move(rec));
}

void
Endpoint::cancelRequest(
    const std::shared_ptr<RecvRequest::State> &state)
{
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
        if (it->request == state) {
            posted_.erase(it);
            return;
        }
    }
}

void
Endpoint::postCommon(PostedRecv rec)
{

    // 1. Already-completed unexpected message?
    if (rec.src != anySource) {
        auto &per_src = unexpectedBySrc_[static_cast<Rank>(rec.src)];
        for (auto it = per_src.begin(); it != per_src.end(); ++it) {
            if (rec.tag == anyTag || rec.tag == it->second.tag) {
                const Message msg = it->second;
                eraseUnexpectedOrder(static_cast<Rank>(rec.src),
                                     it->first);
                per_src.erase(it);
                ++statUnexpected_;
                finishRecv(rec, msg);
                return;
            }
        }
    } else {
        for (auto it = unexpectedOrder_.begin();
             it != unexpectedOrder_.end(); ++it) {
            auto &per_src = unexpectedBySrc_[it->first];
            auto mit = per_src.find(it->second);
            AQSIM_ASSERT(mit != per_src.end());
            if (rec.tag == anyTag || rec.tag == mit->second.tag) {
                const Message msg = mit->second;
                per_src.erase(mit);
                unexpectedOrder_.erase(it);
                ++statUnexpected_;
                finishRecv(rec, msg);
                return;
            }
        }
    }

    // 2. Pending rendezvous announcement?
    if (rec.src != anySource) {
        auto &per_src = pendingRts_[static_cast<Rank>(rec.src)];
        for (auto it = per_src.begin(); it != per_src.end(); ++it) {
            if (rec.tag == anyTag || rec.tag == it->second.tag) {
                const MsgHeader header = it->second;
                erasePendingRtsOrder(static_cast<Rank>(rec.src),
                                     it->first);
                per_src.erase(it);
                rec.boundMsgId = header.msgId;
                posted_.push_back(rec);
                sendControl(ControlPayload::Kind::Cts, header,
                            header.src);
                return;
            }
        }
    } else {
        for (auto it = pendingRtsOrder_.begin();
             it != pendingRtsOrder_.end(); ++it) {
            auto &per_src = pendingRts_[it->first];
            auto mit = per_src.find(it->second);
            AQSIM_ASSERT(mit != per_src.end());
            if (rec.tag == anyTag || rec.tag == mit->second.tag) {
                const MsgHeader header = mit->second;
                per_src.erase(mit);
                pendingRtsOrder_.erase(it);
                rec.boundMsgId = header.msgId;
                posted_.push_back(rec);
                sendControl(ControlPayload::Kind::Cts, header,
                            header.src);
                return;
            }
        }
    }

    // 3. Wait for a future arrival.
    posted_.push_back(rec);
}

bool
Endpoint::probe(int src, int tag) const
{
    for (const auto &[order_src, order_seq] : unexpectedOrder_) {
        if (src != anySource && static_cast<Rank>(src) != order_src)
            continue;
        const auto &per_src = unexpectedBySrc_[order_src];
        auto it = per_src.find(order_seq);
        AQSIM_ASSERT(it != per_src.end());
        if (tag == anyTag || tag == it->second.tag)
            return true;
    }
    return false;
}

void
Endpoint::eraseUnexpectedOrder(Rank src, std::uint64_t seq)
{
    auto it = std::find(unexpectedOrder_.begin(), unexpectedOrder_.end(),
                        std::make_pair(src, seq));
    AQSIM_ASSERT(it != unexpectedOrder_.end());
    unexpectedOrder_.erase(it);
}

void
Endpoint::erasePendingRtsOrder(Rank src, std::uint64_t seq)
{
    auto it = std::find(pendingRtsOrder_.begin(), pendingRtsOrder_.end(),
                        std::make_pair(src, seq));
    AQSIM_ASSERT(it != pendingRtsOrder_.end());
    pendingRtsOrder_.erase(it);
}

void
Endpoint::serialize(ckpt::Writer &w) const
{
    w.u32(rank_);
    w.u64(numRanks_);

    w.u32(static_cast<std::uint32_t>(sendSeq_.size()));
    for (std::uint64_t seq : sendSeq_)
        w.u64(seq);
    w.u64(nextMsgId_);
    w.i32(collectiveTagCounter_);

    w.u32(static_cast<std::uint32_t>(rxBuffers_.size()));
    for (const auto &[msg_id, rx] : rxBuffers_)
        rx.serialize(w);

    w.u32(static_cast<std::uint32_t>(unexpectedOrder_.size()));
    for (const auto &[src, seq] : unexpectedOrder_) {
        w.u32(src);
        w.u64(seq);
        auto it = unexpectedBySrc_[src].find(seq);
        AQSIM_ASSERT(it != unexpectedBySrc_[src].end());
        it->second.serialize(w);
    }

    w.u32(static_cast<std::uint32_t>(pendingRtsOrder_.size()));
    for (const auto &[src, seq] : pendingRtsOrder_) {
        w.u32(src);
        w.u64(seq);
        auto it = pendingRts_[src].find(seq);
        AQSIM_ASSERT(it != pendingRts_[src].end());
        it->second.serialize(w);
    }

    // Posted receives: the match pattern and rendezvous binding are
    // state; the suspended coroutine itself is reconstructed by replay.
    w.u32(static_cast<std::uint32_t>(posted_.size()));
    for (const PostedRecv &rec : posted_) {
        w.i32(rec.src);
        w.i32(rec.tag);
        w.u64(rec.boundMsgId);
    }

    w.u32(static_cast<std::uint32_t>(ctsWaiters_.size()));
    for (const auto &[msg_id, trig] : ctsWaiters_)
        w.u64(msg_id);

    w.u32(static_cast<std::uint32_t>(ackWaiters_.size()));
    for (const auto &[msg_id, waiter] : ackWaiters_) {
        w.u64(msg_id);
        w.u32(waiter.expected);
    }

    w.u32(static_cast<std::uint32_t>(ackProgress_.size()));
    for (const auto &[msg_id, count] : ackProgress_) {
        w.u64(msg_id);
        w.u32(count);
    }

    // Retry table: everything but the raw timer event id (a slab
    // handle; its firing tick is already captured by the event queue).
    w.u32(static_cast<std::uint32_t>(txRetry_.size()));
    for (const auto &[msg_id, st] : txRetry_) {
        st.header.serialize(w);
        w.u32(st.numFrags);
        w.u32(st.winFirst);
        w.u32(st.winLast);
        w.boolean(st.awaitingCts);
        w.u32(st.retries);
        w.u64(st.timeout);
        w.boolean(st.timer != sim::EventQueue::invalidEvent);
    }

    w.u32(static_cast<std::uint32_t>(deliveredMsgIds_.size()));
    for (std::uint64_t msg_id : deliveredMsgIds_)
        w.u64(msg_id);

    w.u64(messagesSent_);
    w.u64(messagesReceived_);
    w.u64(rendezvousCount_);
    w.u64(retransmits_);
    w.u64(corruptDropped_);
}

std::uint64_t
Endpoint::stateHash() const
{
    ckpt::Writer w;
    serialize(w);
    return w.hash();
}

} // namespace aqsim::mpi
