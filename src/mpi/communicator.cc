#include "mpi/communicator.hh"

#include <algorithm>

#include "base/debug.hh"
#include "base/logging.hh"

namespace aqsim::mpi
{

void
RecvAwaitable::await_suspend(std::coroutine_handle<> h)
{
    ep_.postRecv(this, h);
}

RecvRequest::RecvRequest(Endpoint &ep, int src, int tag)
    : ep_(ep), state_(std::make_shared<State>())
{
    ep_.postRequest(state_, src, tag);
}

RecvRequest::~RecvRequest()
{
    if (!state_->completed)
        ep_.cancelRequest(state_);
}

void
RecvRequest::await_suspend(std::coroutine_handle<> h)
{
    AQSIM_ASSERT(!state_->waiter); // single joiner
    state_->waiter = h;
}

Endpoint::Endpoint(Rank rank, std::size_t num_ranks,
                   node::NodeSimulator &node, EndpointParams params)
    : rank_(rank), numRanks_(num_ranks), node_(node),
      queue_(node.queue()), params_(params), sendSeq_(num_ranks, 0),
      unexpectedBySrc_(num_ranks), pendingRts_(num_ranks),
      mpiStats_(node.statsGroup().addGroup("mpi")),
      statMsgsSent_(mpiStats_.add<stats::Scalar>(
          "msgsSent", "messages sent")),
      statBytesSent_(mpiStats_.add<stats::Scalar>(
          "bytesSent", "message payload bytes sent")),
      statMsgsRecvd_(mpiStats_.add<stats::Scalar>(
          "msgsRecvd", "messages received and matched")),
      statRendezvous_(mpiStats_.add<stats::Scalar>(
          "rendezvous", "messages using the RTS/CTS protocol")),
      statUnexpected_(mpiStats_.add<stats::Scalar>(
          "unexpectedHits", "receives satisfied from the unexpected "
                            "queue")),
      statLatency_(mpiStats_.add<stats::Log2Distribution>(
          "messageLatency",
          "ticks from application send to full arrival"))
{
    AQSIM_ASSERT(rank < num_ranks);
    node_.nic().setRxHandler(
        [this](const net::PacketPtr &pkt) { handleRx(pkt); });
}

std::uint32_t
Endpoint::framePayload() const
{
    const auto &nic = node_.nic().params();
    AQSIM_ASSERT(nic.mtu > params_.frameOverhead);
    return nic.mtu - params_.frameOverhead;
}

int
Endpoint::nextCollectiveTag()
{
    // High tag space reserved for collectives; user tags stay below.
    constexpr int collective_base = 1 << 20;
    return collective_base + collectiveTagCounter_++;
}

sim::Process
Endpoint::send(Rank dst, int tag, std::uint64_t bytes)
{
    AQSIM_ASSERT(dst < numRanks_ && dst != rank_);
    AQSIM_ASSERT(tag >= 0);

    // Identity is assigned when the coroutine body first runs (at
    // start()), so sequence numbers follow program order even when
    // sends are forked.
    MsgHeader hdr;
    hdr.msgId = (static_cast<std::uint64_t>(rank_ + 1) << 40) |
                nextMsgId_++;
    hdr.src = rank_;
    hdr.dst = dst;
    hdr.tag = tag;
    hdr.bytes = bytes;
    hdr.seq = sendSeq_[dst]++;
    hdr.sendTick = queue_.now();
    hdr.seal();

    ++messagesSent_;
    ++statMsgsSent_;
    statBytesSent_ += static_cast<double>(bytes);

    // Software overhead plus staging copy into the transport.
    const auto copy = static_cast<Tick>(
        static_cast<double>(bytes) / params_.copyBytesPerNs);
    co_await sim::DelayAwaitable(queue_, params_.sendOverhead + copy);

    if (bytes <= params_.eagerThreshold) {
        // Eager: fire and forget; local completion semantics.
        transmitData(hdr);
        co_return;
    }

    // Rendezvous: announce, wait for the receiver's clear-to-send,
    // then stream the data window by window (stalling on the
    // receiver's flow-control ACK between windows) and block until it
    // has drained onto the wire (MPI_Send completion semantics).
    ++rendezvousCount_;
    ++statRendezvous_;
    auto trigger = std::make_unique<sim::Trigger>(queue_);
    sim::Trigger *cts = trigger.get();
    ctsWaiters_.emplace(hdr.msgId, std::move(trigger));
    sendControl(ControlPayload::Kind::Rts, hdr, dst);

    co_await cts->wait();

    const std::uint32_t num_frags =
        fragmentCount(hdr.bytes, framePayload());
    const std::uint32_t window = windowFragments();
    for (std::uint32_t first = 0; first < num_frags;
         first += window) {
        const std::uint32_t last =
            std::min(num_frags, first + window);
        transmitFragments(hdr, first, last, num_frags);
        if (last < num_frags) {
            // Stall until the receiver acknowledges this window.
            auto ack = std::make_unique<sim::Trigger>(queue_);
            sim::Trigger *ack_ptr = ack.get();
            ackWaiters_[hdr.msgId] = std::move(ack);
            co_await ack_ptr->wait();
        }
    }
    const Tick busy_until = node_.nic().txBusyUntil();
    if (busy_until > queue_.now())
        co_await sim::DelayAwaitable(queue_, busy_until - queue_.now());
}

void
Endpoint::sendControl(ControlPayload::Kind kind, const MsgHeader &header,
                      Rank to)
{
    node_.nic().send(to, params_.ctrlFrameBytes,
                     std::make_shared<ControlPayload>(kind, header));
}

std::uint32_t
Endpoint::windowFragments() const
{
    return std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(params_.ackWindowBytes /
                                      framePayload()));
}

void
Endpoint::transmitData(const MsgHeader &header)
{
    const std::uint32_t num_frags =
        fragmentCount(header.bytes, framePayload());
    transmitFragments(header, 0, num_frags, num_frags);
}

void
Endpoint::transmitFragments(const MsgHeader &header, std::uint32_t first,
                            std::uint32_t last, std::uint32_t num_frags)
{
    const std::uint32_t payload_cap = framePayload();
    for (std::uint32_t i = first; i < last; ++i) {
        // The final fragment carries the remainder.
        const std::uint64_t offset =
            static_cast<std::uint64_t>(i) * payload_cap;
        const auto in_frame = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(header.bytes - offset,
                                    payload_cap));
        node_.nic().send(
            header.dst, in_frame + params_.frameOverhead,
            std::make_shared<FragmentPayload>(header, i, num_frags));
    }
}

void
Endpoint::handleRx(const net::PacketPtr &pkt)
{
    AQSIM_ASSERT(pkt->payload != nullptr);
    if (auto frag = std::dynamic_pointer_cast<const FragmentPayload>(
            pkt->payload)) {
        handleFragment(*frag);
        return;
    }
    if (auto ctrl = std::dynamic_pointer_cast<const ControlPayload>(
            pkt->payload)) {
        switch (ctrl->kind) {
          case ControlPayload::Kind::Rts:
            handleRts(ctrl->header);
            break;
          case ControlPayload::Kind::Cts:
            handleCts(ctrl->header);
            break;
          case ControlPayload::Kind::Ack:
            handleAck(ctrl->header);
            break;
        }
        return;
    }
    panic("endpoint %u received a frame with unknown payload type",
          rank_);
}

void
Endpoint::handleFragment(const FragmentPayload &frag)
{
    auto [it, inserted] =
        rxBuffers_.try_emplace(frag.header.msgId, frag.header);
    const bool complete = it->second.addFragment(frag);
    const std::uint32_t received = it->second.received();

    if (complete) {
        const MsgHeader header = it->second.header();
        rxBuffers_.erase(it);
        ackProgress_.erase(header.msgId);
        messageComplete(header);
        return;
    }
    // Flow control: acknowledge every completed transport window of a
    // multi-window rendezvous message so the sender can release the
    // next one (eager messages are below the window size and are
    // never acknowledged).
    const std::uint32_t window = windowFragments();
    if (frag.header.bytes > params_.eagerThreshold &&
        frag.numFrags > window && received % window == 0) {
        auto &acked = ackProgress_[frag.header.msgId];
        if (received > acked) {
            acked = received;
            sendControl(ControlPayload::Kind::Ack, frag.header,
                        frag.header.src);
        }
    }
}

void
Endpoint::handleAck(const MsgHeader &header)
{
    AQSIM_DPRINTF(Mpi, queue_.now(), "mpi",
                  "rank %u got window ACK msg=%llu",
                  rank_, static_cast<unsigned long long>(header.msgId));
    auto it = ackWaiters_.find(header.msgId);
    if (it == ackWaiters_.end())
        panic("endpoint %u got ACK for unknown msg %llu", rank_,
              static_cast<unsigned long long>(header.msgId));
    it->second->fire();
    ackWaiters_.erase(it);
}

void
Endpoint::messageComplete(const MsgHeader &header)
{
    AQSIM_ASSERT(header.dst == rank_);
    Message msg;
    msg.src = header.src;
    msg.tag = header.tag;
    msg.bytes = header.bytes;
    msg.completedAt = queue_.now();
    msg.sentAt = header.sendTick;
    AQSIM_ASSERT(msg.completedAt >= header.sendTick);
    statLatency_.sample(msg.completedAt - header.sendTick);

    // Pass 1: a recv bound to exactly this rendezvous message.
    for (std::size_t i = 0; i < posted_.size(); ++i) {
        if (posted_[i].boundMsgId == header.msgId) {
            PostedRecv rec = posted_[i];
            posted_.erase(posted_.begin() +
                          static_cast<std::ptrdiff_t>(i));
            finishRecv(rec, msg);
            return;
        }
    }
    // Pass 2: the earliest-posted unbound recv that matches.
    for (std::size_t i = 0; i < posted_.size(); ++i) {
        if (posted_[i].boundMsgId == 0 &&
            matches(posted_[i], header.src, header.tag)) {
            PostedRecv rec = posted_[i];
            posted_.erase(posted_.begin() +
                          static_cast<std::ptrdiff_t>(i));
            finishRecv(rec, msg);
            return;
        }
    }
    // No match: store as unexpected.
    unexpectedBySrc_[header.src].emplace(header.seq, msg);
    unexpectedOrder_.emplace_back(header.src, header.seq);
}

void
Endpoint::handleRts(const MsgHeader &header)
{
    AQSIM_DPRINTF(Mpi, queue_.now(), "mpi",
                  "rank %u got RTS msg=%llu from %u (%llu bytes)",
                  rank_, static_cast<unsigned long long>(header.msgId),
                  header.src,
                  static_cast<unsigned long long>(header.bytes));
    // Bind the earliest matching unbound posted recv, if any.
    for (auto &rec : posted_) {
        if (rec.boundMsgId == 0 &&
            matches(rec, header.src, header.tag)) {
            rec.boundMsgId = header.msgId;
            sendControl(ControlPayload::Kind::Cts, header, header.src);
            return;
        }
    }
    pendingRts_[header.src].emplace(header.seq, header);
    pendingRtsOrder_.emplace_back(header.src, header.seq);
}

void
Endpoint::handleCts(const MsgHeader &header)
{
    AQSIM_DPRINTF(Mpi, queue_.now(), "mpi",
                  "rank %u got CTS msg=%llu",
                  rank_, static_cast<unsigned long long>(header.msgId));
    auto it = ctsWaiters_.find(header.msgId);
    if (it == ctsWaiters_.end())
        panic("endpoint %u got CTS for unknown msg %llu", rank_,
              static_cast<unsigned long long>(header.msgId));
    it->second->fire();
    ctsWaiters_.erase(it);
}

bool
Endpoint::matches(const PostedRecv &recv, Rank src, int tag)
{
    return (recv.src == anySource ||
            recv.src == static_cast<int>(src)) &&
           (recv.tag == anyTag || recv.tag == tag);
}

void
Endpoint::finishRecv(PostedRecv &recv, const Message &msg)
{
    AQSIM_DPRINTF(Mpi, queue_.now(), "mpi",
                  "rank %u matched msg from %u tag=%d (%llu bytes)",
                  rank_, msg.src, msg.tag,
                  static_cast<unsigned long long>(msg.bytes));
    ++messagesReceived_;
    ++statMsgsRecvd_;
    if (recv.request) {
        // Non-blocking receive: complete the shared state after the
        // software overhead; resume a joiner if one is waiting.
        auto state = recv.request;
        Message completed = msg;
        queue_.scheduleIn(params_.recvOverhead, [state, completed] {
            state->completed = true;
            state->message = completed;
            if (state->waiter)
                state->waiter.resume();
        });
        return;
    }
    recv.awaitable->result_ = msg;
    const auto h = recv.waiter;
    queue_.scheduleIn(params_.recvOverhead, [h] { h.resume(); });
}

void
Endpoint::postRecv(RecvAwaitable *aw, std::coroutine_handle<> h)
{
    PostedRecv rec;
    rec.src = aw->src_;
    rec.tag = aw->tag_;
    rec.awaitable = aw;
    rec.waiter = h;
    postCommon(std::move(rec));
}

void
Endpoint::postRequest(std::shared_ptr<RecvRequest::State> state,
                      int src, int tag)
{
    PostedRecv rec;
    rec.src = src;
    rec.tag = tag;
    rec.request = std::move(state);
    postCommon(std::move(rec));
}

void
Endpoint::cancelRequest(
    const std::shared_ptr<RecvRequest::State> &state)
{
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
        if (it->request == state) {
            posted_.erase(it);
            return;
        }
    }
}

void
Endpoint::postCommon(PostedRecv rec)
{

    // 1. Already-completed unexpected message?
    if (rec.src != anySource) {
        auto &per_src = unexpectedBySrc_[static_cast<Rank>(rec.src)];
        for (auto it = per_src.begin(); it != per_src.end(); ++it) {
            if (rec.tag == anyTag || rec.tag == it->second.tag) {
                const Message msg = it->second;
                eraseUnexpectedOrder(static_cast<Rank>(rec.src),
                                     it->first);
                per_src.erase(it);
                ++statUnexpected_;
                finishRecv(rec, msg);
                return;
            }
        }
    } else {
        for (auto it = unexpectedOrder_.begin();
             it != unexpectedOrder_.end(); ++it) {
            auto &per_src = unexpectedBySrc_[it->first];
            auto mit = per_src.find(it->second);
            AQSIM_ASSERT(mit != per_src.end());
            if (rec.tag == anyTag || rec.tag == mit->second.tag) {
                const Message msg = mit->second;
                per_src.erase(mit);
                unexpectedOrder_.erase(it);
                ++statUnexpected_;
                finishRecv(rec, msg);
                return;
            }
        }
    }

    // 2. Pending rendezvous announcement?
    if (rec.src != anySource) {
        auto &per_src = pendingRts_[static_cast<Rank>(rec.src)];
        for (auto it = per_src.begin(); it != per_src.end(); ++it) {
            if (rec.tag == anyTag || rec.tag == it->second.tag) {
                const MsgHeader header = it->second;
                erasePendingRtsOrder(static_cast<Rank>(rec.src),
                                     it->first);
                per_src.erase(it);
                rec.boundMsgId = header.msgId;
                posted_.push_back(rec);
                sendControl(ControlPayload::Kind::Cts, header,
                            header.src);
                return;
            }
        }
    } else {
        for (auto it = pendingRtsOrder_.begin();
             it != pendingRtsOrder_.end(); ++it) {
            auto &per_src = pendingRts_[it->first];
            auto mit = per_src.find(it->second);
            AQSIM_ASSERT(mit != per_src.end());
            if (rec.tag == anyTag || rec.tag == mit->second.tag) {
                const MsgHeader header = mit->second;
                per_src.erase(mit);
                pendingRtsOrder_.erase(it);
                rec.boundMsgId = header.msgId;
                posted_.push_back(rec);
                sendControl(ControlPayload::Kind::Cts, header,
                            header.src);
                return;
            }
        }
    }

    // 3. Wait for a future arrival.
    posted_.push_back(rec);
}

bool
Endpoint::probe(int src, int tag) const
{
    for (const auto &[order_src, order_seq] : unexpectedOrder_) {
        if (src != anySource && static_cast<Rank>(src) != order_src)
            continue;
        const auto &per_src = unexpectedBySrc_[order_src];
        auto it = per_src.find(order_seq);
        AQSIM_ASSERT(it != per_src.end());
        if (tag == anyTag || tag == it->second.tag)
            return true;
    }
    return false;
}

void
Endpoint::eraseUnexpectedOrder(Rank src, std::uint64_t seq)
{
    auto it = std::find(unexpectedOrder_.begin(), unexpectedOrder_.end(),
                        std::make_pair(src, seq));
    AQSIM_ASSERT(it != unexpectedOrder_.end());
    unexpectedOrder_.erase(it);
}

void
Endpoint::erasePendingRtsOrder(Rank src, std::uint64_t seq)
{
    auto it = std::find(pendingRtsOrder_.begin(), pendingRtsOrder_.end(),
                        std::make_pair(src, seq));
    AQSIM_ASSERT(it != pendingRtsOrder_.end());
    pendingRtsOrder_.erase(it);
}

} // namespace aqsim::mpi
