/**
 * @file
 * Message-passing endpoint: the guest-side communication library.
 *
 * Endpoint models what LAM/MPI over TCP/IP provides to the benchmark
 * processes in the paper: rank-addressed, tag-matched messages with
 * blocking semantics, an eager protocol for short messages and a
 * rendezvous (RTS/CTS) protocol for long ones. Rendezvous handshakes
 * are real control packets through the simulated network, which is what
 * makes fine-grained benchmarks (NAS IS) latency-sensitive — the effect
 * the paper's Section 6 worst case hinges on.
 *
 * Usage inside a workload coroutine:
 *
 *     co_await ep.send(dst, tag, bytes);            // blocking send
 *     Message m = co_await ep.recv(src, tag);       // blocking recv
 *     auto s = ep.send(dst, tag, bytes); s.start(); // async send
 *     ...                                           // overlap
 *     co_await std::move(s);                        // join
 */

#ifndef AQSIM_MPI_COMMUNICATOR_HH
#define AQSIM_MPI_COMMUNICATOR_HH

#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "base/types.hh"
#include "mpi/message.hh"
#include "node/node_simulator.hh"
#include "sim/process.hh"
#include "stats/histogram.hh"
#include "stats/stats.hh"

namespace aqsim::ckpt
{
class Writer;
} // namespace aqsim::ckpt

namespace aqsim::mpi
{

class Endpoint;

/**
 * Awaitable returned by Endpoint::recv(). Suspends the caller until a
 * matching message has fully arrived, then resumes it after the
 * receive-side software overhead and yields the Message.
 */
class RecvAwaitable
{
  public:
    RecvAwaitable(Endpoint &ep, int src, int tag)
        : ep_(ep), src_(src), tag_(tag)
    {}

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    Message await_resume() const noexcept { return result_; }

  private:
    friend class Endpoint;

    Endpoint &ep_;
    int src_;
    int tag_;
    Message result_;
};

/**
 * A non-blocking receive (MPI_Irecv): posting registers the match
 * immediately; awaiting joins it. The request object owns the posted
 * state and must outlive the await.
 *
 *     auto req = ep.irecv(src, tag);   // posted now
 *     ...unrelated work...
 *     mpi::Message m = co_await req;   // join
 */
class RecvRequest
{
  public:
    RecvRequest(Endpoint &ep, int src, int tag);

    RecvRequest(const RecvRequest &) = delete;
    RecvRequest &operator=(const RecvRequest &) = delete;
    RecvRequest(RecvRequest &&) = delete;
    RecvRequest &operator=(RecvRequest &&) = delete;
    ~RecvRequest();

    /** @return true once the message has arrived and matched. */
    bool ready() const { return state_->completed; }

    bool await_ready() const noexcept { return state_->completed; }
    void await_suspend(std::coroutine_handle<> h);
    Message await_resume() const noexcept { return state_->message; }

  private:
    friend class Endpoint;

    /** Heap state shared with the endpoint's posted list. */
    struct State
    {
        bool completed = false;
        Message message;
        std::coroutine_handle<> waiter;
    };

    Endpoint &ep_;
    std::shared_ptr<State> state_;
};

/** Protocol and software-overhead parameters (LAM/TCP-flavoured). */
struct EndpointParams
{
    /** Messages above this use the rendezvous protocol. */
    std::uint64_t eagerThreshold = 64 * 1024;
    /**
     * TCP-style flow-control window for rendezvous data: the sender
     * transmits this many bytes, then stalls until the receiver's
     * ACK control frame arrives. Long transfers therefore take one
     * network round trip per window — the dependence chains that
     * amplify quantum-induced latency error (NAS IS worst case).
     */
    std::uint64_t ackWindowBytes = 64 * 1024;
    /** Send-side software overhead per message. */
    Tick sendOverhead = 400;
    /** Receive-side software overhead per message. */
    Tick recvOverhead = 400;
    /** Memory staging bandwidth for send-side copies (bytes/ns). */
    double copyBytesPerNs = 6.0;
    /** Per-frame protocol header bytes (Ethernet + IP + TCP). */
    std::uint32_t frameOverhead = 78;
    /** Size of RTS/CTS control frames. */
    std::uint32_t ctrlFrameBytes = 80;
    /**
     * Reliable delivery: retransmit unacknowledged messages until the
     * receiver's Rack arrives, suppress duplicates at the receiver.
     * Required for workloads to complete on a lossy (fault-injected)
     * network; a perfect network never retransmits, so leaving this on
     * costs only the timer bookkeeping.
     */
    bool reliable = false;
    /** Initial retransmit timeout (ticks) in reliable mode. */
    Tick retryTimeout = microseconds(50);
    /** Multiplicative backoff applied to the timeout per retry. */
    double retryBackoff = 2.0;
    /** Retries per message before the run is declared failed. */
    unsigned maxRetries = 20;
};

/**
 * One rank's communication endpoint, bound to its node's NIC and event
 * queue.
 */
class Endpoint
{
  public:
    Endpoint(Rank rank, std::size_t num_ranks,
             node::NodeSimulator &node, EndpointParams params);

    Rank rank() const { return rank_; }
    std::size_t numRanks() const { return numRanks_; }
    sim::EventQueue &queue() { return queue_; }
    const EndpointParams &params() const { return params_; }

    /**
     * Blocking send of @p bytes to rank @p dst with tag @p tag.
     * Completes (resumes the caller) when the message has been handed
     * off locally (eager) or fully transmitted after the rendezvous
     * handshake (long messages) — MPI_Send semantics.
     */
    sim::Process send(Rank dst, int tag, std::uint64_t bytes);

    /** Blocking receive matching (src|anySource, tag|anyTag). */
    RecvAwaitable
    recv(int src, int tag)
    {
        return RecvAwaitable(*this, src, tag);
    }

    /**
     * Non-blocking receive: posts the match immediately, join with
     * co_await on the returned request. Destroying an unmatched
     * request cancels the posted receive.
     */
    RecvRequest
    irecv(int src, int tag)
    {
        return RecvRequest(*this, src, tag);
    }

    /**
     * Non-consuming probe (MPI_Iprobe): @return true if a completed,
     * still-unmatched message matching (src|anySource, tag|anyTag) is
     * waiting in the unexpected queue.
     */
    bool probe(int src, int tag) const;

    /**
     * Allocate the tag for the next collective operation. All ranks
     * execute the same collective sequence (SPMD), so counters agree
     * cluster-wide.
     */
    int nextCollectiveTag();

    /** Diagnostics for deadlock reports. */
    std::size_t postedRecvCount() const { return posted_.size(); }
    std::size_t unexpectedCount() const { return unexpectedOrder_.size(); }

    /** Lifetime message counters. */
    std::uint64_t messagesSent() const { return messagesSent_; }
    std::uint64_t messagesReceived() const { return messagesReceived_; }
    std::uint64_t rendezvousCount() const { return rendezvousCount_; }

    /**
     * Checkpoint support: persist the full protocol state — sequence
     * counters, reassembly buffers, unexpected/pending queues, posted
     * match patterns, rendezvous and flow-control waiter sets, and the
     * reliable-delivery retry table. Coroutine handles and event ids
     * are code, not data; they are reconstructed by deterministic
     * replay and this serialization drives the divergence self-check.
     */
    void serialize(ckpt::Writer &w) const;

    /** FNV-1a fingerprint of serialize() output. */
    std::uint64_t stateHash() const;

    /** Retransmission events fired in reliable mode. */
    std::uint64_t retransmits() const { return retransmits_; }
    /** Frames discarded for a set corrupted flag (link CRC failure). */
    std::uint64_t corruptDropped() const { return corruptDropped_; }
    /** Messages still awaiting a delivery acknowledgment. */
    std::size_t retryBacklog() const { return txRetry_.size(); }

  private:
    friend class RecvAwaitable;
    friend class RecvRequest;

    struct PostedRecv
    {
        int src;
        int tag;
        /** Non-zero once bound to a specific rendezvous message. */
        std::uint64_t boundMsgId = 0;
        /** Blocking-recv completion target. */
        RecvAwaitable *awaitable = nullptr;
        std::coroutine_handle<> waiter;
        /** Non-blocking-recv completion target. */
        std::shared_ptr<RecvRequest::State> request;
    };

    /**
     * Reliable-mode sender bookkeeping for one in-flight message: what
     * to retransmit when the retry timer expires, and how often it has
     * already fired. Lives from first transmission until the receiver's
     * Rack arrives.
     */
    struct TxRetryState
    {
        MsgHeader header;
        std::uint32_t numFrags = 0;
        /** Fragment window [winFirst, winLast) to retransmit. */
        std::uint32_t winFirst = 0;
        std::uint32_t winLast = 0;
        /** Still in the RTS/CTS handshake: retransmit the RTS. */
        bool awaitingCts = false;
        unsigned retries = 0;
        /** Current timeout (grows by retryBackoff per retry). */
        Tick timeout = 0;
        sim::EventQueue::EventId timer = sim::EventQueue::invalidEvent;
    };

    /** NIC receive handler: dispatch on payload type. */
    void handleRx(const net::PacketPtr &pkt);
    void handleFragment(const FragmentPayload &frag);
    void handleRts(const MsgHeader &header);
    void handleCts(const MsgHeader &header);
    void handleAck(const ControlPayload &ctrl);
    void handleRack(const MsgHeader &header);

    /** Register retry state for a just-transmitted message. */
    TxRetryState &trackRetry(const MsgHeader &header,
                             std::uint32_t num_frags, bool awaiting_cts);
    /** (Re)arm the retry timer for @p st at now() + st.timeout. */
    void armRetry(TxRetryState &st);
    /** Cancel a pending retry timer, if any. */
    void cancelRetry(TxRetryState &st);
    /** Retry timer expired: retransmit the outstanding RTS/window. */
    void onRetryTimeout(std::uint64_t msg_id);

    /** A message fully arrived: match it or store it as unexpected. */
    void messageComplete(const MsgHeader &header);

    /** Register a posted receive (called by RecvAwaitable). */
    void postRecv(RecvAwaitable *aw, std::coroutine_handle<> h);

    /** Register a non-blocking receive (called by RecvRequest). */
    void postRequest(std::shared_ptr<RecvRequest::State> state, int src,
                     int tag);

    /** Drop an unmatched non-blocking receive (request destroyed). */
    void cancelRequest(const std::shared_ptr<RecvRequest::State> &state);

    /**
     * Common posting path: try the unexpected queue, then pending
     * RTS announcements, else append to the posted list.
     */
    void postCommon(PostedRecv rec);

    /** Complete a posted recv with a message at now()+recvOverhead. */
    void finishRecv(PostedRecv &recv, const Message &msg);

    /** Send an RTS/CTS control frame. */
    void sendControl(ControlPayload::Kind kind, const MsgHeader &header,
                     Rank to, std::uint32_t progress = 0);

    /** Enqueue all data fragments of a message on the NIC. */
    void transmitData(const MsgHeader &header);

    /** Enqueue fragments [first, last) of a message on the NIC. */
    void transmitFragments(const MsgHeader &header, std::uint32_t first,
                           std::uint32_t last, std::uint32_t num_frags);

    /** Fragments per flow-control window. */
    std::uint32_t windowFragments() const;

    /** Does (src,tag) of a message match a recv pattern? */
    static bool matches(const PostedRecv &recv, Rank src, int tag);

    /** Drop a consumed entry from the completion-order deques. */
    void eraseUnexpectedOrder(Rank src, std::uint64_t seq);
    void erasePendingRtsOrder(Rank src, std::uint64_t seq);

    /** Fragmented payload capacity per frame. */
    std::uint32_t framePayload() const;

    Rank rank_;
    std::size_t numRanks_;
    node::NodeSimulator &node_;
    sim::EventQueue &queue_;
    EndpointParams params_;

    /** Per-destination send sequence numbers. */
    std::vector<std::uint64_t> sendSeq_;
    std::uint64_t nextMsgId_ = 1;
    int collectiveTagCounter_ = 0;

    /** In-flight inbound reassembly, by msgId. */
    std::map<std::uint64_t, RxBuffer> rxBuffers_;
    /** Completed unmatched messages: per source, by send seq. */
    std::vector<std::map<std::uint64_t, Message>> unexpectedBySrc_;
    /** (src, seq) in completion order, for anySource matching. */
    std::deque<std::pair<Rank, std::uint64_t>> unexpectedOrder_;
    /** RTS received with no matching recv posted yet: per src by seq. */
    std::vector<std::map<std::uint64_t, MsgHeader>> pendingRts_;
    /** (src, seq) RTS arrival order, for anySource matching. */
    std::deque<std::pair<Rank, std::uint64_t>> pendingRtsOrder_;
    /** Posted receives in post order. */
    std::deque<PostedRecv> posted_;
    /** Senders blocked waiting for CTS, by msgId. */
    std::map<std::uint64_t, std::unique_ptr<sim::Trigger>> ctsWaiters_;
    /** A sender stalled on one flow-control window boundary. */
    struct AckWaiter
    {
        std::unique_ptr<sim::Trigger> trigger;
        /**
         * Cumulative fragment count the Ack must confirm. Under loss
         * a retransmitted window can generate repeated Acks for an
         * already-crossed boundary; firing on one of those would
         * release the next window while this one still has holes the
         * retry timer no longer covers.
         */
        std::uint32_t expected = 0;
    };

    /** Senders blocked waiting for a window ACK, by msgId. */
    std::map<std::uint64_t, AckWaiter> ackWaiters_;
    /** Inbound fragment counts pending the next window ACK. */
    std::map<std::uint64_t, std::uint32_t> ackProgress_;
    /** Reliable mode: unacknowledged outbound messages, by msgId. */
    std::map<std::uint64_t, TxRetryState> txRetry_;
    /** Reliable mode: fully delivered inbound msgIds (dup filter). */
    std::set<std::uint64_t> deliveredMsgIds_;

    std::uint64_t messagesSent_ = 0;
    std::uint64_t messagesReceived_ = 0;
    std::uint64_t rendezvousCount_ = 0;
    std::uint64_t retransmits_ = 0;
    std::uint64_t corruptDropped_ = 0;

    stats::Group &mpiStats_;
    stats::Scalar &statMsgsSent_;
    stats::Scalar &statBytesSent_;
    stats::Scalar &statMsgsRecvd_;
    stats::Scalar &statRendezvous_;
    stats::Scalar &statUnexpected_;
    stats::Scalar &statRetransmits_;
    stats::Log2Distribution &statLatency_;
};

} // namespace aqsim::mpi

#endif // AQSIM_MPI_COMMUNICATOR_HH
