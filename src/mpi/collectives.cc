#include "mpi/collectives.hh"

#include <utility>

#include "base/logging.hh"

namespace aqsim::mpi
{

namespace
{

/** Largest power of two <= n. */
std::size_t
floorPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p * 2 <= n)
        p *= 2;
    return p;
}

} // namespace

sim::Process
sendrecv(Endpoint &ep, Rank dst, Rank src, int tag,
         std::uint64_t send_bytes)
{
    auto s = ep.send(dst, tag, send_bytes);
    s.start();
    co_await ep.recv(static_cast<int>(src), tag);
    co_await std::move(s);
}

sim::Process
barrier(Endpoint &ep)
{
    const std::size_t n = ep.numRanks();
    if (n <= 1)
        co_return;
    const int tag = ep.nextCollectiveTag();
    const Rank r = ep.rank();
    for (std::size_t k = 1; k < n; k <<= 1) {
        const Rank dst = static_cast<Rank>((r + k) % n);
        const Rank src = static_cast<Rank>((r + n - k) % n);
        co_await sendrecv(ep, dst, src, tag, 0);
    }
}

sim::Process
bcast(Endpoint &ep, Rank root, std::uint64_t bytes)
{
    const std::size_t n = ep.numRanks();
    if (n <= 1)
        co_return;
    AQSIM_ASSERT(root < n);
    const int tag = ep.nextCollectiveTag();
    const Rank r = ep.rank();
    const std::size_t relative = (r + n - root) % n;

    // Receive from the parent (non-root ranks).
    std::size_t mask = 1;
    while (mask < n) {
        if (relative & mask) {
            const Rank src =
                static_cast<Rank>(((relative - mask) + root) % n);
            co_await ep.recv(static_cast<int>(src), tag);
            break;
        }
        mask <<= 1;
    }

    // Forward to children, largest subtree first (all forked so the
    // subtrees stream concurrently).
    std::vector<sim::Process> sends;
    mask >>= 1;
    while (mask > 0) {
        if (relative + mask < n) {
            const Rank dst =
                static_cast<Rank>(((relative + mask) + root) % n);
            sends.push_back(ep.send(dst, tag, bytes));
            sends.back().start();
        }
        mask >>= 1;
    }
    for (auto &s : sends)
        co_await std::move(s);
}

sim::Process
reduce(Endpoint &ep, Rank root, std::uint64_t bytes)
{
    const std::size_t n = ep.numRanks();
    if (n <= 1)
        co_return;
    AQSIM_ASSERT(root < n);
    const int tag = ep.nextCollectiveTag();
    const Rank r = ep.rank();
    const std::size_t relative = (r + n - root) % n;

    std::size_t mask = 1;
    while (mask < n) {
        if ((relative & mask) == 0) {
            const std::size_t src_rel = relative | mask;
            if (src_rel < n) {
                const Rank src =
                    static_cast<Rank>((src_rel + root) % n);
                co_await ep.recv(static_cast<int>(src), tag);
            }
        } else {
            const Rank dst =
                static_cast<Rank>(((relative & ~mask) + root) % n);
            co_await ep.send(dst, tag, bytes);
            break;
        }
        mask <<= 1;
    }
}

sim::Process
allreduce(Endpoint &ep, std::uint64_t bytes)
{
    const std::size_t n = ep.numRanks();
    if (n <= 1)
        co_return;
    const int tag = ep.nextCollectiveTag();
    const Rank r = ep.rank();
    const std::size_t pof2 = floorPow2(n);
    const std::size_t rem = n - pof2;

    // Fold the extra ranks into the power-of-two core.
    std::ptrdiff_t newrank;
    if (static_cast<std::size_t>(r) < 2 * rem) {
        if (r % 2 == 0) {
            co_await ep.send(r + 1, tag, bytes);
            newrank = -1; // idle during the doubling phase
        } else {
            co_await ep.recv(static_cast<int>(r - 1), tag);
            newrank = static_cast<std::ptrdiff_t>(r / 2);
        }
    } else {
        newrank = static_cast<std::ptrdiff_t>(r - rem);
    }

    if (newrank != -1) {
        for (std::size_t mask = 1; mask < pof2; mask <<= 1) {
            const auto partner_new =
                static_cast<std::size_t>(newrank) ^ mask;
            const Rank partner = static_cast<Rank>(
                partner_new < rem ? partner_new * 2 + 1
                                  : partner_new + rem);
            co_await sendrecv(ep, partner, partner, tag, bytes);
        }
    }

    // Push the result back out to the folded ranks.
    if (static_cast<std::size_t>(r) < 2 * rem) {
        if (r % 2 == 0)
            co_await ep.recv(static_cast<int>(r + 1), tag);
        else
            co_await ep.send(r - 1, tag, bytes);
    }
}

sim::Process
allgather(Endpoint &ep, std::uint64_t bytes_per_rank)
{
    const std::size_t n = ep.numRanks();
    if (n <= 1)
        co_return;
    const int tag = ep.nextCollectiveTag();
    const Rank r = ep.rank();
    const Rank right = static_cast<Rank>((r + 1) % n);
    const Rank left = static_cast<Rank>((r + n - 1) % n);
    for (std::size_t step = 0; step + 1 < n; ++step)
        co_await sendrecv(ep, right, left, tag, bytes_per_rank);
}

sim::Process
gather(Endpoint &ep, Rank root, std::uint64_t bytes_per_rank)
{
    const std::size_t n = ep.numRanks();
    if (n <= 1)
        co_return;
    AQSIM_ASSERT(root < n);
    const int tag = ep.nextCollectiveTag();
    const Rank r = ep.rank();
    const std::size_t relative = (r + n - root) % n;

    std::uint64_t accumulated = bytes_per_rank;
    std::size_t mask = 1;
    while (mask < n) {
        if ((relative & mask) == 0) {
            const std::size_t src_rel = relative | mask;
            if (src_rel < n) {
                const Rank src =
                    static_cast<Rank>((src_rel + root) % n);
                Message m = co_await ep.recv(static_cast<int>(src), tag);
                accumulated += m.bytes;
            }
        } else {
            const Rank dst =
                static_cast<Rank>(((relative & ~mask) + root) % n);
            co_await ep.send(dst, tag, accumulated);
            break;
        }
        mask <<= 1;
    }
}

sim::Process
scatter(Endpoint &ep, Rank root, std::uint64_t bytes_per_rank)
{
    const std::size_t n = ep.numRanks();
    if (n <= 1)
        co_return;
    AQSIM_ASSERT(root < n);
    const int tag = ep.nextCollectiveTag();
    const Rank r = ep.rank();
    const std::size_t relative = (r + n - root) % n;

    // Receive my aggregate from the parent (covers my subtree).
    std::size_t mask = 1;
    while (mask < n) {
        if (relative & mask) {
            const Rank src =
                static_cast<Rank>(((relative - mask) + root) % n);
            co_await ep.recv(static_cast<int>(src), tag);
            break;
        }
        mask <<= 1;
    }
    // Forward each child's share of the aggregate.
    mask >>= 1;
    while (mask > 0) {
        if (relative + mask < n) {
            const Rank dst =
                static_cast<Rank>(((relative + mask) + root) % n);
            // The child's subtree spans min(mask, n - relative - mask)
            // ranks.
            const std::size_t subtree =
                std::min(mask, n - relative - mask);
            co_await ep.send(dst, tag,
                             bytes_per_rank *
                                 static_cast<std::uint64_t>(subtree));
        }
        mask >>= 1;
    }
}

sim::Process
reduceScatter(Endpoint &ep, std::uint64_t bytes_per_rank)
{
    const std::size_t n = ep.numRanks();
    if (n <= 1)
        co_return;
    const int tag = ep.nextCollectiveTag();
    const Rank r = ep.rank();
    const std::size_t pof2 = floorPow2(n);
    const std::size_t rem = n - pof2;

    // Fold extra ranks (as in allreduce).
    std::ptrdiff_t newrank;
    const std::uint64_t full =
        bytes_per_rank * static_cast<std::uint64_t>(n);
    if (static_cast<std::size_t>(r) < 2 * rem) {
        if (r % 2 == 0) {
            co_await ep.send(r + 1, tag, full);
            newrank = -1;
        } else {
            co_await ep.recv(static_cast<int>(r - 1), tag);
            newrank = static_cast<std::ptrdiff_t>(r / 2);
        }
    } else {
        newrank = static_cast<std::ptrdiff_t>(r - rem);
    }

    // Recursive halving: exchanged volume halves every round.
    if (newrank != -1) {
        std::uint64_t chunk = full / 2;
        for (std::size_t mask = pof2 / 2; mask > 0; mask >>= 1) {
            const auto partner_new =
                static_cast<std::size_t>(newrank) ^ mask;
            const Rank partner = static_cast<Rank>(
                partner_new < rem ? partner_new * 2 + 1
                                  : partner_new + rem);
            co_await sendrecv(ep, partner, partner, tag,
                              std::max<std::uint64_t>(chunk, 64));
            chunk = std::max<std::uint64_t>(chunk / 2, 64);
        }
    }

    // Folded ranks receive their share back.
    if (static_cast<std::size_t>(r) < 2 * rem) {
        if (r % 2 == 0)
            co_await ep.recv(static_cast<int>(r + 1), tag);
        else
            co_await ep.send(r - 1, tag, bytes_per_rank);
    }
}

sim::Process
alltoall(Endpoint &ep, std::uint64_t bytes_per_pair)
{
    std::vector<std::uint64_t> sizes(ep.numRanks(), bytes_per_pair);
    co_await alltoallv(ep, std::move(sizes));
}

sim::Process
alltoallv(Endpoint &ep, std::vector<std::uint64_t> bytes_to_peer)
{
    const std::size_t n = ep.numRanks();
    if (n <= 1)
        co_return;
    AQSIM_ASSERT(bytes_to_peer.size() == n);
    const int tag = ep.nextCollectiveTag();
    const Rank r = ep.rank();
    const bool pow2 = (n & (n - 1)) == 0;

    for (std::size_t step = 1; step < n; ++step) {
        Rank send_to, recv_from;
        if (pow2) {
            send_to = recv_from = static_cast<Rank>(r ^ step);
        } else {
            send_to = static_cast<Rank>((r + step) % n);
            recv_from = static_cast<Rank>((r + n - step) % n);
        }
        auto s = ep.send(send_to, tag, bytes_to_peer[send_to]);
        s.start();
        co_await ep.recv(static_cast<int>(recv_from), tag);
        co_await std::move(s);
    }
}

} // namespace aqsim::mpi
