/**
 * @file
 * Message-layer wire format: headers, fragments, control packets.
 *
 * The mpi layer segments messages into MTU-sized frames, reassembles
 * them at the receiver, and verifies integrity via a per-message
 * checksum carried on every fragment. We model payload *shape* (sizes,
 * ordering, identity) rather than payload *content*; the checksum makes
 * the transport functionally verifiable end to end.
 */

#ifndef AQSIM_MPI_MESSAGE_HH
#define AQSIM_MPI_MESSAGE_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "net/packet.hh"

namespace aqsim::ckpt
{
class Writer;
} // namespace aqsim::ckpt

namespace aqsim::mpi
{

/** Matches any source rank in recv(). */
constexpr int anySource = -1;
/** Matches any tag in recv(). */
constexpr int anyTag = -1;

/** Identity and shape of one message. */
struct MsgHeader
{
    /** Cluster-unique message id. */
    std::uint64_t msgId = 0;
    Rank src = 0;
    Rank dst = 0;
    int tag = 0;
    /** Total payload bytes. */
    std::uint64_t bytes = 0;
    /** Per-(src,dst) send sequence number (MPI ordering). */
    std::uint64_t seq = 0;
    /** Tick at which the application issued the send. */
    Tick sendTick = 0;
    /** Integrity checksum over the identity fields. */
    std::uint64_t checksum = 0;

    /** Compute the expected checksum for the other fields. */
    std::uint64_t expectedChecksum() const;

    /** Fill in the checksum field. */
    void seal();

    /** @return true if the checksum matches the identity fields. */
    bool verify() const;

    /** Checkpoint support: persist all identity fields. */
    void serialize(ckpt::Writer &w) const;
};

/** One data fragment of a segmented message. */
class FragmentPayload : public net::Payload
{
  public:
    FragmentPayload(MsgHeader header, std::uint32_t index,
                    std::uint32_t total)
        : header(header), fragIndex(index), numFrags(total)
    {}

    MsgHeader header;
    std::uint32_t fragIndex;
    std::uint32_t numFrags;
};

/** Rendezvous-protocol control packets. */
class ControlPayload : public net::Payload
{
  public:
    enum class Kind
    {
        /** Request to send: large message announced by the sender. */
        Rts,
        /** Clear to send: receiver has a matching buffer posted. */
        Cts,
        /**
         * Flow-control acknowledgment: one transport window of a long
         * message fully received (TCP-style windowing; the source of
         * the per-window round trips that make bulk transfers
         * latency-sensitive).
         */
        Ack,
        /**
         * Reliable-delivery acknowledgment: the whole message was
         * received and delivered. The sender cancels its retransmit
         * timer; a duplicate delivery attempt is answered with a fresh
         * Rack (see docs/fault-injection.md).
         */
        Rack,
    };

    ControlPayload(Kind kind, MsgHeader header,
                   std::uint32_t progress = 0)
        : kind(kind), header(header), progress(progress)
    {}

    Kind kind;
    MsgHeader header;
    /**
     * Ack only: the receiver's cumulative distinct-fragment count at
     * the moment the Ack was generated. A retransmitted window can
     * produce more than one Ack for the same boundary (the hole-fill
     * and the trailing duplicate of the window's final fragment);
     * the sender uses this field to accept only the Ack for the
     * window it is actually stalled on, so a stale or repeated Ack
     * can never release a later window early.
     */
    std::uint32_t progress;
};

/** A fully received, verified message as seen by the application. */
struct Message
{
    Rank src = 0;
    int tag = 0;
    std::uint64_t bytes = 0;
    /** Tick at which the last fragment was delivered. */
    Tick completedAt = 0;
    /** Tick at which the sender's application issued the send. */
    Tick sentAt = 0;

    /** Observed end-to-end latency (send to full arrival). */
    Tick
    latency() const
    {
        return completedAt - sentAt;
    }

    /** Checkpoint support. */
    void serialize(ckpt::Writer &w) const;
};

/**
 * Reassembly state of one in-flight inbound message.
 */
class RxBuffer
{
  public:
    /** Outcome of accounting one fragment. */
    enum class AddResult
    {
        /** New fragment accepted, message still incomplete. */
        Progress,
        /** New fragment accepted and the message is now complete. */
        Complete,
        /**
         * Fragment already seen (a retransmit or a duplicated frame);
         * ignored. Tolerated rather than fatal because the fault layer
         * and the reliable-delivery retransmit path both legitimately
         * produce duplicates.
         */
        Duplicate,
    };

    explicit RxBuffer(const MsgHeader &header);

    /** Account one fragment. */
    AddResult addFragment(const FragmentPayload &frag);

    const MsgHeader &header() const { return header_; }
    std::uint32_t received() const { return received_; }
    std::uint32_t expected() const { return numFrags_; }

    /** Checkpoint support: header + fragment bitmap. */
    void serialize(ckpt::Writer &w) const;

  private:
    MsgHeader header_;
    std::uint32_t numFrags_;
    std::uint32_t received_ = 0;
    std::vector<bool> seen_;
};

/** Number of MTU-sized fragments for a message of @p bytes. */
std::uint32_t fragmentCount(std::uint64_t bytes, std::uint32_t mtu);

} // namespace aqsim::mpi

#endif // AQSIM_MPI_MESSAGE_HH
