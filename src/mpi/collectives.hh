/**
 * @file
 * Collective communication operations over Endpoint point-to-point
 * messaging, using the standard algorithms (MPICH/LAM lineage):
 *
 *  - barrier:    dissemination (log2 n rounds)
 *  - bcast:      binomial tree
 *  - reduce:     binomial tree (reversed)
 *  - allreduce:  recursive doubling with non-power-of-two fold
 *  - allgather:  ring (n-1 steps)
 *  - gather:     binomial tree with accumulated sizes
 *  - alltoall:   pairwise exchange (XOR schedule for powers of two)
 *  - alltoallv:  pairwise exchange with per-peer sizes
 *
 * Each collective is a coroutine; all ranks must invoke the same
 * sequence of collectives (SPMD), which keeps the internally allocated
 * tags consistent cluster-wide.
 *
 * The *shape* of these algorithms is the point: they create exactly the
 * dependence chains (e.g. alltoall in NAS IS) whose dilation under long
 * synchronization quanta drives the paper's accuracy results.
 */

#ifndef AQSIM_MPI_COLLECTIVES_HH
#define AQSIM_MPI_COLLECTIVES_HH

#include <cstdint>
#include <vector>

#include "mpi/communicator.hh"
#include "sim/process.hh"

namespace aqsim::mpi
{

/** Concurrent send+recv with the same tag (deadlock-free exchange). */
sim::Process sendrecv(Endpoint &ep, Rank dst, Rank src, int tag,
                      std::uint64_t send_bytes);

/** Dissemination barrier. */
sim::Process barrier(Endpoint &ep);

/** Binomial-tree broadcast of @p bytes from @p root. */
sim::Process bcast(Endpoint &ep, Rank root, std::uint64_t bytes);

/** Binomial-tree reduction of @p bytes vectors to @p root. */
sim::Process reduce(Endpoint &ep, Rank root, std::uint64_t bytes);

/** Recursive-doubling allreduce of @p bytes vectors. */
sim::Process allreduce(Endpoint &ep, std::uint64_t bytes);

/** Ring allgather; every rank contributes @p bytes_per_rank. */
sim::Process allgather(Endpoint &ep, std::uint64_t bytes_per_rank);

/** Binomial gather of @p bytes_per_rank per rank to @p root. */
sim::Process gather(Endpoint &ep, Rank root,
                    std::uint64_t bytes_per_rank);

/**
 * Binomial scatter from @p root; every rank ends up with
 * @p bytes_per_rank. Internally forwards halved aggregates down the
 * tree (MPICH algorithm), so wire volume matches the real operation.
 */
sim::Process scatter(Endpoint &ep, Rank root,
                     std::uint64_t bytes_per_rank);

/**
 * Reduce-scatter of a vector of n * @p bytes_per_rank: pairwise
 * exchange with recursive halving; each rank keeps one share.
 */
sim::Process reduceScatter(Endpoint &ep,
                           std::uint64_t bytes_per_rank);

/** Pairwise-exchange alltoall; @p bytes_per_pair to every other rank. */
sim::Process alltoall(Endpoint &ep, std::uint64_t bytes_per_pair);

/**
 * Pairwise-exchange alltoallv. @p bytes_to_peer[i] is the payload this
 * rank sends to rank i (entry for the own rank is ignored). All ranks
 * must participate.
 */
sim::Process alltoallv(Endpoint &ep,
                       std::vector<std::uint64_t> bytes_to_peer);

} // namespace aqsim::mpi

#endif // AQSIM_MPI_COLLECTIVES_HH
