#include "mpi/message.hh"

#include "base/logging.hh"
#include "ckpt/ckpt_io.hh"

namespace aqsim::mpi
{

namespace
{

std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

} // namespace

std::uint64_t
MsgHeader::expectedChecksum() const
{
    std::uint64_t h = mix(msgId);
    h = mix(h ^ (static_cast<std::uint64_t>(src) << 32 | dst));
    h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(tag)));
    h = mix(h ^ bytes);
    h = mix(h ^ seq);
    h = mix(h ^ sendTick);
    return h;
}

void
MsgHeader::seal()
{
    checksum = expectedChecksum();
}

bool
MsgHeader::verify() const
{
    return checksum == expectedChecksum();
}

void
MsgHeader::serialize(ckpt::Writer &w) const
{
    w.u64(msgId);
    w.u32(src);
    w.u32(dst);
    w.i32(tag);
    w.u64(bytes);
    w.u64(seq);
    w.u64(sendTick);
    w.u64(checksum);
}

void
Message::serialize(ckpt::Writer &w) const
{
    w.u32(src);
    w.i32(tag);
    w.u64(bytes);
    w.u64(completedAt);
    w.u64(sentAt);
}

void
RxBuffer::serialize(ckpt::Writer &w) const
{
    header_.serialize(w);
    w.u32(numFrags_);
    w.u32(received_);
    for (std::uint32_t i = 0; i < numFrags_; ++i)
        w.boolean(seen_[i]);
}

RxBuffer::RxBuffer(const MsgHeader &header)
    : header_(header), numFrags_(0)
{
    // numFrags_ is learned from the first fragment seen.
}

RxBuffer::AddResult
RxBuffer::addFragment(const FragmentPayload &frag)
{
    AQSIM_ASSERT(frag.header.msgId == header_.msgId);
    if (!frag.header.verify())
        panic("corrupt fragment checksum for msg %llu",
              static_cast<unsigned long long>(frag.header.msgId));
    if (numFrags_ == 0) {
        numFrags_ = frag.numFrags;
        seen_.assign(numFrags_, false);
    }
    AQSIM_ASSERT(frag.numFrags == numFrags_);
    AQSIM_ASSERT(frag.fragIndex < numFrags_);
    if (seen_[frag.fragIndex])
        return AddResult::Duplicate;
    seen_[frag.fragIndex] = true;
    ++received_;
    return received_ == numFrags_ ? AddResult::Complete
                                  : AddResult::Progress;
}

std::uint32_t
fragmentCount(std::uint64_t bytes, std::uint32_t mtu)
{
    AQSIM_ASSERT(mtu > 0);
    if (bytes == 0)
        return 1; // zero-byte messages still occupy one frame
    return static_cast<std::uint32_t>((bytes + mtu - 1) / mtu);
}

} // namespace aqsim::mpi
