#include "ckpt/run_checkpointer.hh"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "base/logging.hh"
#include "core/synchronizer.hh"
#include "engine/cluster.hh"
#include "engine/run_result.hh"

namespace aqsim::ckpt
{

RunCheckpointer::RunCheckpointer(const RunCkptOptions &options,
                                 const engine::Cluster &cluster,
                                 const core::Synchronizer &sync,
                                 std::uint64_t config_hash,
                                 std::string engine_name)
    : options_(options), cluster_(cluster), sync_(sync),
      configHash_(config_hash), engineName_(std::move(engine_name))
{
    if (options_.every > 0 && options_.dir.empty())
        fatal("checkpoint cadence set (every %llu quanta) but no "
              "checkpoint directory configured",
              static_cast<unsigned long long>(options_.every));
    if (!options_.dir.empty())
        manager_ = std::make_unique<CheckpointManager>(
            options_.dir, options_.every, options_.keepLast);
}

RunCheckpointer::~RunCheckpointer() = default;

void
RunCheckpointer::begin()
{
    if (options_.restorePath.empty())
        return;

    CkptError error;
    std::error_code ec;
    if (std::filesystem::is_directory(options_.restorePath, ec)) {
        // Point --restore at a checkpoint directory and the newest
        // decodable file wins; torn/corrupt candidates are skipped.
        CheckpointManager scan(options_.restorePath, 0, 0);
        if (!scan.loadBest(golden_, goldenPath_, error)) {
            for (const std::string &reason : scan.skipped())
                warn("restore: skipped %s", reason.c_str());
            fatal("restore failed: %s", error.str().c_str());
        }
        for (const std::string &reason : scan.skipped())
            warn("restore: fell back past %s", reason.c_str());
    } else {
        std::vector<std::uint8_t> raw;
        if (!readFile(options_.restorePath, raw, error) ||
            !decodeImage(raw, golden_, error))
            fatal("restore failed for %s: %s",
                  options_.restorePath.c_str(), error.str().c_str());
        goldenPath_ = options_.restorePath;
    }

    if (golden_.engine != engineName_)
        fatal("restore rejected: %s was produced by the %s engine; "
              "restore with the same engine (this run is %s) — the "
              "engine-private state section is not portable",
              goldenPath_.c_str(), golden_.engine.c_str(),
              engineName_.c_str());
    if (golden_.configHash != configHash_)
        fatal("restore rejected: %s was taken under a different "
              "configuration (fingerprint %016llx, this run is "
              "%016llx)",
              goldenPath_.c_str(),
              static_cast<unsigned long long>(golden_.configHash),
              static_cast<unsigned long long>(configHash_));
    restoring_ = true;
    inform("restoring from %s (quantum %llu, engine %s): replaying "
           "with %s divergence checking",
           goldenPath_.c_str(),
           static_cast<unsigned long long>(golden_.quantumIndex),
           golden_.engine.c_str(),
           options_.verifyRestore ? "per-section" : "state-hash");
}

bool
RunCheckpointer::imageDue(std::uint64_t q) const
{
    const bool verify_due = restoring_ && restoredFrom_ == 0 &&
                            q == golden_.quantumIndex;
    // During replay the quanta up to the golden snapshot would produce
    // the files already on disk; only new ground is checkpointed.
    const bool write_due =
        manager_ && manager_->due(q) &&
        (!restoring_ || q > golden_.quantumIndex);
    const bool stash_due = options_.stashForPanic && manager_ != nullptr;
    return verify_due || write_due || stash_due;
}

void
RunCheckpointer::onQuantumCompleted(
    const std::vector<std::uint8_t> &engine_state)
{
    if (!imageDue(sync_.numQuanta()))
        return;
    onQuantumCompleted(buildImage(cluster_, sync_, configHash_,
                                  engineName_, engine_state));
}

void
RunCheckpointer::onQuantumCompleted(const CheckpointImage &image)
{
    const std::uint64_t q = sync_.numQuanta();
    const bool verify_due = restoring_ && restoredFrom_ == 0 &&
                            q == golden_.quantumIndex;
    const bool write_due =
        manager_ && manager_->due(q) &&
        (!restoring_ || q > golden_.quantumIndex);
    const bool stash_due = options_.stashForPanic && manager_;
    if (!verify_due && !write_due && !stash_due)
        return;

    if (verify_due) {
        CkptError error;
        if (options_.verifyRestore) {
            if (!compareImages(golden_, image, error))
                fatal("restore divergence at quantum %llu: %s",
                      static_cast<unsigned long long>(q),
                      error.str().c_str());
        } else if (image.stateHash != golden_.stateHash) {
            fatal("restore divergence at quantum %llu: replayed "
                  "state hash %016llx != checkpoint %016llx "
                  "(rerun with verify-restore to localize the "
                  "diverging section)",
                  static_cast<unsigned long long>(q),
                  static_cast<unsigned long long>(image.stateHash),
                  static_cast<unsigned long long>(golden_.stateHash));
        }
        restoredFrom_ = q;
        inform("restore verified at quantum %llu (state %016llx)",
               static_cast<unsigned long long>(q),
               static_cast<unsigned long long>(image.stateHash));
    }

    if (write_due) {
        CkptError error;
        if (!manager_->write(image, error))
            warn("checkpoint write failed at quantum %llu: %s",
                 static_cast<unsigned long long>(q),
                 error.str().c_str());
    }

    if (stash_due)
        manager_->stashPanicImage(encodeImage(image));
}

void
RunCheckpointer::finish(engine::RunResult &result) const
{
    if (manager_) {
        result.checkpointsWritten = manager_->stats().written;
        result.checkpointBytes = manager_->stats().bytes;
        result.checkpointWriteNs = manager_->stats().writeNs;
    }
    result.restoredFromQuantum = restoredFrom_;
    if (restoring_ && restoredFrom_ == 0)
        fatal("restore never reached quantum %llu (run ended after "
              "%llu quanta) — the checkpoint belongs to a longer run",
              static_cast<unsigned long long>(golden_.quantumIndex),
              static_cast<unsigned long long>(sync_.numQuanta()));
}

std::string
RunCheckpointer::panicNote()
{
    if (!manager_)
        return "";
    char line[160];
    const CkptWriteStats &s = manager_->stats();
    std::snprintf(line, sizeof(line),
                  "  checkpoints: %llu written (%.1f KB, %.2f ms)\n",
                  static_cast<unsigned long long>(s.written),
                  s.bytes / 1024.0, s.writeNs * 1e-6);
    std::string out = line;
    if (restoredFrom_ > 0) {
        std::snprintf(line, sizeof(line),
                      "  restored from quantum %llu\n",
                      static_cast<unsigned long long>(restoredFrom_));
        out += line;
    }
    const std::string path = manager_->writePanicImage();
    if (!path.empty())
        out += "  checkpoint: last quantum boundary written to " +
               path + "\n";
    return out;
}

} // namespace aqsim::ckpt
