/**
 * @file
 * Per-run checkpoint/restore driver shared by both engines.
 *
 * The engines own the quantum loop; this class owns everything
 * checkpoint-shaped inside it. At each quantum boundary (after
 * Synchronizer::completeQuantum(), i.e. on a consistent cut) the
 * engine calls onQuantumCompleted() and the driver decides whether to
 *
 *  - snapshot + write a periodic checkpoint file,
 *  - stash the encoded snapshot for the watchdog's panic dump,
 *  - verify a restore: when the replay reaches the checkpointed
 *    quantum, the live state is compared against the golden image and
 *    any divergence fails the run loudly, naming the section.
 *
 * Restore is replay-based: guest programs are coroutines (code, not
 * data), so --restore re-executes deterministically from quantum 0
 * and uses the checkpoint as a cryptographic-strength tripwire that
 * the replayed state is bit-identical at the snapshot point.
 */

#ifndef AQSIM_CKPT_RUN_CHECKPOINTER_HH
#define AQSIM_CKPT_RUN_CHECKPOINTER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "ckpt/manager.hh"

namespace aqsim::engine
{
struct RunResult;
} // namespace aqsim::engine

namespace aqsim::ckpt
{

/** Checkpoint/restore slice of the engine options. */
struct RunCkptOptions
{
    /** Write a checkpoint every N completed quanta (0 = never). */
    std::uint64_t every = 0;
    /** Checkpoint directory (required when every > 0). */
    std::string dir;
    /** Checkpoint file (or directory to auto-pick) to restore from. */
    std::string restorePath;
    /** Per-section divergence check instead of hash-only. */
    bool verifyRestore = false;
    /** Files kept after rotation (0 = unlimited). */
    std::size_t keepLast = 2;
    /** Stash each boundary snapshot for the watchdog panic dump. */
    bool stashForPanic = false;

    /** @return true if any checkpoint/restore work is configured. */
    bool
    enabled() const
    {
        return every > 0 || !restorePath.empty() || stashForPanic;
    }
};

/** Drives checkpoint writes and restore verification for one run. */
class RunCheckpointer
{
  public:
    /**
     * @param config_hash fingerprint of the run configuration
     *        (configFingerprint()); restores reject a mismatch
     */
    RunCheckpointer(const RunCkptOptions &options,
                    const engine::Cluster &cluster,
                    const core::Synchronizer &sync,
                    std::uint64_t config_hash, std::string engine_name);
    ~RunCheckpointer();

    /**
     * Load and validate the restore image, if one was requested.
     * Fatal on an unusable file or a configuration mismatch.
     */
    void begin();

    /**
     * Quantum-boundary hook; call after completeQuantum().
     *
     * @param engine_state deterministic engine-private section body
     *        (empty = omitted)
     */
    void
    onQuantumCompleted(const std::vector<std::uint8_t> &engine_state);

    /**
     * Would completing quantum @p q need a full state image (restore
     * verify, periodic write, or panic stash)? The DistributedEngine
     * asks before a boundary so it only pays the cross-process state
     * gather on quanta where an image is actually consumed.
     */
    bool imageDue(std::uint64_t q) const;

    /**
     * Quantum-boundary hook taking a pre-assembled image (the
     * DistributedEngine coordinator splices one from gathered peer
     * sections). Same verify/write/stash decisions as the
     * engine-state overload.
     */
    void onQuantumCompleted(const CheckpointImage &image);

    /** Fold checkpoint/restore stats into the run result. */
    void finish(engine::RunResult &result) const;

    /**
     * Watchdog dump hook: persist the last stashed boundary snapshot.
     * Thread-safe. @return a line for the dump, or "" if nothing to
     * report.
     */
    std::string panicNote();

    /** @return quantum index the run was verified against (0=none). */
    std::uint64_t restoredFromQuantum() const { return restoredFrom_; }

  private:
    RunCkptOptions options_;
    const engine::Cluster &cluster_;
    const core::Synchronizer &sync_;
    std::uint64_t configHash_;
    std::string engineName_;

    std::unique_ptr<CheckpointManager> manager_;
    /** Golden image loaded by begin() in restore mode. */
    CheckpointImage golden_;
    std::string goldenPath_;
    bool restoring_ = false;
    std::uint64_t restoredFrom_ = 0;
};

} // namespace aqsim::ckpt

#endif // AQSIM_CKPT_RUN_CHECKPOINTER_HH
