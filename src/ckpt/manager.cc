#include "ckpt/manager.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace aqsim::ckpt
{

namespace fs = std::filesystem;

CheckpointManager::CheckpointManager(std::string dir, std::uint64_t every,
                                     std::size_t keep_last)
    : dir_(std::move(dir)), every_(every), keepLast_(keep_last)
{
    if (!dir_.empty()) {
        std::error_code ec;
        fs::create_directories(dir_, ec);
    }
}

bool
CheckpointManager::due(std::uint64_t quantum_index) const
{
    return every_ > 0 && quantum_index > 0 &&
           quantum_index % every_ == 0;
}

std::string
CheckpointManager::fileName(std::uint64_t quantum_index) const
{
    char name[48];
    std::snprintf(name, sizeof(name), "ckpt-q%012llu.aqc",
                  static_cast<unsigned long long>(quantum_index));
    return dir_ + "/" + name;
}

std::string
CheckpointManager::panicFileName() const
{
    return dir_ + "/panic.aqc";
}

bool
CheckpointManager::write(const CheckpointImage &image, CkptError &error)
{
    const auto begin = std::chrono::steady_clock::now();
    std::vector<std::uint8_t> encoded = encodeImage(image);
    if (corruptNextWrite_) {
        corruptNextWrite_ = false;
        if (encoded.size() > 16)
            encoded[encoded.size() / 2] ^= 0xff;
    }
    const std::string path = fileName(image.quantumIndex);
    if (!writeFileAtomic(path, encoded, error))
        return false;
    // Read-back verification: only an image proven decodable may
    // become rotation's survivor. A torn or bit-flipped write is
    // deleted on the spot and rotation is skipped, so the previous
    // good file stays on disk even under keep-last-1.
    std::vector<std::uint8_t> readback;
    CheckpointImage decoded;
    CkptError verify_error;
    if (!readFile(path, readback, verify_error) ||
        !decodeImage(readback, decoded, verify_error)) {
        std::error_code ec;
        fs::remove(path, ec);
        error = {"verify", path + " failed read-back verification: " +
                               verify_error.str()};
        return false;
    }
    verifiedPath_ = path;
    rotate();
    const auto end = std::chrono::steady_clock::now();

    ++stats_.written;
    stats_.bytes += encoded.size();
    stats_.writeNs += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
            .count());
    return true;
}

std::vector<std::pair<std::uint64_t, std::string>>
CheckpointManager::listFiles() const
{
    std::vector<std::pair<std::uint64_t, std::string>> files;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        unsigned long long q = 0;
        if (std::sscanf(name.c_str(), "ckpt-q%llu.aqc", &q) != 1)
            continue;
        files.emplace_back(q, entry.path().string());
    }
    std::sort(files.begin(), files.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });
    return files;
}

void
CheckpointManager::rotate()
{
    if (keepLast_ == 0)
        return;
    const auto files = listFiles();
    for (std::size_t i = keepLast_; i < files.size(); ++i) {
        // Never delete the newest verified image: if unverified (or
        // externally written, possibly torn) files newer than it push
        // it past the keep budget, it is still the only checkpoint
        // recovery is guaranteed to accept.
        if (files[i].second == verifiedPath_)
            continue;
        std::error_code ec;
        fs::remove(files[i].second, ec);
    }
}

bool
CheckpointManager::loadBest(CheckpointImage &out, std::string &path_out,
                            CkptError &error)
{
    skipped_.clear();
    const auto files = listFiles();
    if (files.empty()) {
        error = {"header", "no checkpoint files in " + dir_};
        return false;
    }
    for (const auto &[q, path] : files) {
        std::vector<std::uint8_t> raw;
        CkptError file_error;
        if (!readFile(path, raw, file_error) ||
            !decodeImage(raw, out, file_error)) {
            skipped_.push_back(path + ": " + file_error.str());
            continue;
        }
        path_out = path;
        return true;
    }
    error = {"header", "no decodable checkpoint in " + dir_ + " (" +
                           std::to_string(skipped_.size()) +
                           " corrupt/torn candidates skipped)"};
    return false;
}

void
CheckpointManager::stashPanicImage(std::vector<std::uint8_t> encoded)
{
    base::MutexLock lock(panicMutex_);
    panicImage_ = std::move(encoded);
}

std::string
CheckpointManager::writePanicImage()
{
    base::MutexLock lock(panicMutex_);
    if (panicImage_.empty())
        return "";
    CkptError error;
    if (!writeFileAtomic(panicFileName(), panicImage_, error))
        return "";
    return panicFileName();
}

} // namespace aqsim::ckpt
