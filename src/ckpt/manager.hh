/**
 * @file
 * On-disk checkpoint lifecycle: periodic writes, rotation, recovery.
 *
 * The manager owns a checkpoint directory and a cadence: every N
 * completed quanta it encodes the current CheckpointImage and writes
 * it via temp-file + atomic rename, then prunes old files down to the
 * keep-last budget. Recovery scans the directory newest-first and
 * falls back to the previous good file when the newest one is torn or
 * corrupt, so a crash mid-write (or a bit flip on disk) degrades to
 * an older checkpoint instead of a failed restore.
 *
 * The manager also keeps a "panic image": the engine stashes the
 * encoded boundary snapshot here each quantum, and the watchdog's
 * dump path writes the stash to "panic.aqc" before the process dies —
 * giving the post-mortem a restorable state without ever touching
 * live simulator structures from the watchdog thread.
 */

#ifndef AQSIM_CKPT_MANAGER_HH
#define AQSIM_CKPT_MANAGER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/mutex.hh"
#include "ckpt/checkpoint.hh"

namespace aqsim::ckpt
{

/** Cumulative cost of checkpoint writes in one run. */
struct CkptWriteStats
{
    std::uint64_t written = 0;
    std::uint64_t bytes = 0;
    /** Host wall-clock spent encoding + writing, in ns. */
    double writeNs = 0.0;
};

/** Writes, rotates and recovers checkpoint files in one directory. */
class CheckpointManager
{
  public:
    /**
     * @param dir checkpoint directory (created if missing)
     * @param every write after every N completed quanta (0 = never)
     * @param keep_last files retained after rotation (0 = unlimited)
     */
    CheckpointManager(std::string dir, std::uint64_t every,
                      std::size_t keep_last = 2);

    /** @return true if a checkpoint is due after @p quantum_index. */
    bool due(std::uint64_t quantum_index) const;

    /**
     * Encode + atomically write @p image, verify the write by reading
     * it back and decoding it, then rotate old files. A write that
     * fails read-back verification is deleted and does *not* trigger
     * rotation, and rotation never deletes the newest verified image
     * — so an in-flight or torn write can never consume the only good
     * checkpoint, even under keep-last-1.
     * @return true on success; failures are I/O errors, not fatal.
     */
    bool write(const CheckpointImage &image, CkptError &error);

    /**
     * Test seam: corrupt the next write's encoded bytes before they
     * hit the disk, simulating a torn/bit-flipped in-flight image
     * (read-back verification must catch it and spare the previous
     * good file from rotation).
     */
    void corruptNextWriteForTest() { corruptNextWrite_ = true; }

    /** Newest image proven decodable by write verification (tests). */
    const std::string &verifiedPath() const { return verifiedPath_; }

    /**
     * Recover the newest decodable checkpoint in the directory.
     * Corrupt/torn candidates are skipped (recorded in skipped()).
     *
     * @param out decoded image
     * @param path_out file the image came from
     * @return true if any good checkpoint was found
     */
    bool loadBest(CheckpointImage &out, std::string &path_out,
                  CkptError &error);

    /** Files rejected during the last loadBest(), with reasons. */
    const std::vector<std::string> &skipped() const { return skipped_; }

    const CkptWriteStats &stats() const { return stats_; }
    const std::string &dir() const { return dir_; }
    std::uint64_t every() const { return every_; }

    /** Checkpoint file path for one quantum index. */
    std::string fileName(std::uint64_t quantum_index) const;

    /** Path of the watchdog panic checkpoint. */
    std::string panicFileName() const;

    /**
     * Stash the encoded boundary snapshot for the watchdog (called by
     * the engine at each quantum boundary; thread-safe).
     */
    void stashPanicImage(std::vector<std::uint8_t> encoded)
        AQSIM_EXCLUDES(panicMutex_);

    /**
     * Write the stashed panic image to panic.aqc (called from the
     * watchdog dump path). @return the file path, or "" if no
     * boundary snapshot was ever stashed or the write failed.
     */
    std::string writePanicImage() AQSIM_EXCLUDES(panicMutex_);

  private:
    /** Delete all but the newest keepLast_ checkpoint files. */
    void rotate();

    /** Scan dir_ for "ckpt-q*.aqc", sorted newest-first. */
    std::vector<std::pair<std::uint64_t, std::string>> listFiles() const;

    std::string dir_;
    std::uint64_t every_;
    std::size_t keepLast_;
    CkptWriteStats stats_;
    std::vector<std::string> skipped_;
    /** Newest write that passed read-back verification. */
    std::string verifiedPath_;
    bool corruptNextWrite_ = false;

    /** Engine thread stashes, watchdog thread writes: the one pair of
     * CheckpointManager entry points that can genuinely race. */
    base::Mutex panicMutex_;
    std::vector<std::uint8_t> panicImage_ AQSIM_GUARDED_BY(panicMutex_);
};

} // namespace aqsim::ckpt

#endif // AQSIM_CKPT_MANAGER_HH
