#include "ckpt/ckpt_io.hh"

#include <cstdio>
#include <cstring>

#include "base/random.hh"

namespace aqsim::ckpt
{

namespace
{

/** Container magic; the trailing digit tracks the container layout. */
constexpr char fileMagic[8] = {'A', 'Q', 'S', 'C', 'K', 'P', 'T', '1'};

/** Lazily built CRC32 (IEEE, reflected) lookup table. */
const std::uint32_t *
crcTable()
{
    static std::uint32_t table[256];
    static bool built = false;
    if (!built) {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            table[i] = c;
        }
        built = true;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t *data, std::size_t size)
{
    const std::uint32_t *table = crcTable();
    std::uint32_t crc = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
    return crc ^ 0xffffffffu;
}

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
CkptError::str() const
{
    return "checkpoint section '" + section + "': " + message;
}

std::string
Reader::str()
{
    const std::uint32_t len = u32();
    if (failed_)
        return {};
    if (size_ - pos_ < len) {
        fail("truncated (need string of " + std::to_string(len) +
             " bytes)");
        return {};
    }
    std::string s(reinterpret_cast<const char *>(data_ + pos_), len);
    pos_ += len;
    return s;
}

void
Reader::fail(const std::string &message)
{
    if (failed_)
        return;
    failed_ = true;
    error_.section = section_;
    error_.message = message;
}

std::vector<std::uint8_t>
encodeFile(const std::vector<Section> &sections)
{
    Writer payload;
    for (const auto &sec : sections) {
        payload.str(sec.name);
        payload.u64(sec.body.size());
        payload.u32(crc32(sec.body.data(), sec.body.size()));
        payload.bytes(sec.body.data(), sec.body.size());
    }

    Writer out;
    out.bytes(reinterpret_cast<const std::uint8_t *>(fileMagic),
              sizeof(fileMagic));
    out.u32(formatVersion);
    out.u32(endianTag);
    out.u64(payload.size());
    out.u32(crc32(payload.buffer().data(), payload.size()));
    out.bytes(payload.buffer().data(), payload.size());
    return out.buffer();
}

bool
decodeFile(const std::vector<std::uint8_t> &image,
           std::vector<Section> &sections, CkptError &error)
{
    sections.clear();
    Reader head(image, "header");

    char magic[sizeof(fileMagic)] = {};
    if (image.size() >= sizeof(fileMagic))
        std::memcpy(magic, image.data(), sizeof(fileMagic));
    for (std::size_t i = 0; i < sizeof(fileMagic); ++i)
        head.u8();
    if (!head.ok() ||
        std::memcmp(magic, fileMagic, sizeof(fileMagic)) != 0) {
        error = {"header", "not an aqsim checkpoint (bad magic)"};
        return false;
    }
    const std::uint32_t version = head.u32();
    if (head.ok() && version != formatVersion) {
        error = {"header",
                 "unsupported checkpoint version " +
                     std::to_string(version) + " (expected " +
                     std::to_string(formatVersion) + ")"};
        return false;
    }
    const std::uint32_t endian = head.u32();
    if (head.ok() && endian != endianTag) {
        error = {"header",
                 "endianness mismatch (file written on a host with "
                 "different byte order)"};
        return false;
    }
    const std::uint64_t payload_len = head.u64();
    const std::uint32_t payload_crc = head.u32();
    if (!head.ok()) {
        error = head.error();
        return false;
    }
    if (payload_len != head.remaining()) {
        error = {"header",
                 "truncated payload (header promises " +
                     std::to_string(payload_len) + " bytes, file holds " +
                     std::to_string(head.remaining()) + ")"};
        return false;
    }
    const std::uint8_t *payload =
        image.data() + (image.size() - payload_len);
    if (crc32(payload, payload_len) != payload_crc) {
        error = {"header", "payload CRC mismatch (corrupt file)"};
        return false;
    }

    Reader body(payload, payload_len, "payload");
    while (body.ok() && body.remaining() > 0) {
        const std::string name = body.str();
        const std::uint64_t len = body.u64();
        const std::uint32_t crc = body.u32();
        if (!body.ok())
            break;
        const std::string where = name.empty() ? "payload" : name;
        if (body.remaining() < len) {
            error = {where,
                     "truncated section body (need " +
                         std::to_string(len) + " bytes, have " +
                         std::to_string(body.remaining()) + ")"};
            return false;
        }
        const std::uint8_t *sec_data =
            payload + (payload_len - body.remaining());
        if (crc32(sec_data, len) != crc) {
            error = {where, "section CRC mismatch (corrupt file)"};
            return false;
        }
        Section sec;
        sec.name = name;
        sec.body.assign(sec_data, sec_data + len);
        sections.push_back(std::move(sec));
        body.skip(len);
    }
    if (!body.ok()) {
        error = body.error();
        return false;
    }
    return true;
}

bool
writeFileAtomic(const std::string &path,
                const std::vector<std::uint8_t> &image, CkptError &error)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        error = {"header", "cannot open '" + tmp + "' for writing"};
        return false;
    }
    const std::size_t written =
        image.empty() ? 0 : std::fwrite(image.data(), 1, image.size(), f);
    const bool flushed = std::fflush(f) == 0;
    std::fclose(f);
    if (written != image.size() || !flushed) {
        std::remove(tmp.c_str());
        error = {"header", "short write to '" + tmp + "'"};
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        error = {"header",
                 "cannot rename '" + tmp + "' over '" + path + "'"};
        return false;
    }
    return true;
}

bool
readFile(const std::string &path, std::vector<std::uint8_t> &image,
         CkptError &error)
{
    image.clear();
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        error = {"header", "cannot open '" + path + "'"};
        return false;
    }
    std::uint8_t chunk[1 << 16];
    for (;;) {
        const std::size_t got = std::fread(chunk, 1, sizeof(chunk), f);
        image.insert(image.end(), chunk, chunk + got);
        if (got < sizeof(chunk))
            break;
    }
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        error = {"header", "read error on '" + path + "'"};
        return false;
    }
    return true;
}

void
putRng(Writer &w, const Rng &rng)
{
    const Rng::State s = rng.state();
    for (std::uint64_t word : s.s)
        w.u64(word);
    w.f64(s.cachedNormal);
    w.boolean(s.hasCachedNormal);
}

void
getRng(Reader &r, Rng &rng)
{
    Rng::State s;
    for (std::uint64_t &word : s.s)
        word = r.u64();
    s.cachedNormal = r.f64();
    s.hasCachedNormal = r.boolean();
    rng.setState(s);
}

} // namespace aqsim::ckpt
