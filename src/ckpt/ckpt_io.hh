/**
 * @file
 * Versioned, CRC-guarded binary serialization for checkpoints.
 *
 * All persistent state in aqsim goes through this layer (the repo lint
 * bans raw fwrite/fread/ofstream state serialization elsewhere). The
 * encoding is deliberately simple and self-checking:
 *
 *   file   := magic(8) version(u32) endianTag(u32)
 *             payloadLen(u64) payloadCrc(u32) payload
 *   payload:= section*
 *   section:= nameLen(u32) name bodyLen(u64) bodyCrc(u32) body
 *
 * Integers are written in the producing host's native byte order; the
 * endian tag lets a reader on a different-endian host fail with a
 * structured error instead of silently misreading state. Every section
 * carries its own CRC32, so a torn or bit-flipped file is rejected
 * with a message naming the offending section.
 *
 * Errors never throw and never crash: the Reader latches the first
 * failure (section + message) and all further reads return zeros, so
 * callers check ok() once at the end of a parse.
 */

#ifndef AQSIM_CKPT_CKPT_IO_HH
#define AQSIM_CKPT_CKPT_IO_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace aqsim
{
class Rng;
} // namespace aqsim

namespace aqsim::ckpt
{

/** File-format version of the checkpoint container. */
constexpr std::uint32_t formatVersion = 1;

/** Native byte-order sentinel stored in every file. */
constexpr std::uint32_t endianTag = 0x01020304u;

/** CRC32 (IEEE 802.3) of a byte range. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t size);

/** FNV-1a 64-bit hash of a byte range (state fingerprints). */
std::uint64_t fnv1a(const std::uint8_t *data, std::size_t size,
                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/** Structured decode failure: which section, what went wrong. */
struct CkptError
{
    /** Section being decoded ("header" before any section). */
    std::string section;
    std::string message;

    /** One-line human-readable rendering. */
    std::string str() const;
};

/** Append-only binary encoder (in-memory; files via writeFileAtomic). */
class Writer
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
    void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
    void i32(std::int32_t v) { raw(&v, sizeof(v)); }
    void i64(std::int64_t v) { raw(&v, sizeof(v)); }
    void f64(double v) { raw(&v, sizeof(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

    void
    bytes(const std::uint8_t *data, std::size_t size)
    {
        raw(data, size);
    }

    const std::vector<std::uint8_t> &buffer() const { return buf_; }
    std::size_t size() const { return buf_.size(); }

    /** FNV-1a fingerprint of everything written so far. */
    std::uint64_t
    hash() const
    {
        return fnv1a(buf_.data(), buf_.size());
    }

  private:
    void
    raw(const void *data, std::size_t size)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf_.insert(buf_.end(), p, p + size);
    }

    std::vector<std::uint8_t> buf_;
};

/**
 * Bounded binary decoder over one section body. The first failed read
 * latches an error; subsequent reads return zeros.
 */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size,
           std::string section)
        : data_(data), size_(size), section_(std::move(section))
    {}

    explicit Reader(const std::vector<std::uint8_t> &data,
                    std::string section = "payload")
        : Reader(data.data(), data.size(), std::move(section))
    {}

    std::uint8_t u8() { return takeScalar<std::uint8_t>("u8"); }
    std::uint32_t u32() { return takeScalar<std::uint32_t>("u32"); }
    std::uint64_t u64() { return takeScalar<std::uint64_t>("u64"); }
    std::int32_t i32() { return takeScalar<std::int32_t>("i32"); }
    std::int64_t i64() { return takeScalar<std::int64_t>("i64"); }
    double f64() { return takeScalar<double>("f64"); }
    bool boolean() { return u8() != 0; }

    std::string str();

    /** @return true if all reads so far decoded cleanly. */
    bool ok() const { return !failed_; }
    const CkptError &error() const { return error_; }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return size_ - pos_; }

    /** Advance past @p n bytes (fails if fewer remain). */
    void
    skip(std::size_t n)
    {
        if (failed_)
            return;
        if (size_ - pos_ < n) {
            fail("truncated (cannot skip " + std::to_string(n) +
                 " bytes)");
            return;
        }
        pos_ += n;
    }

    /** Latch a decode failure (also usable by callers for semantic
     * validation, e.g. an impossible count). */
    void fail(const std::string &message);

  private:
    template <typename T>
    T
    takeScalar(const char *what)
    {
        T v{};
        if (failed_)
            return v;
        if (size_ - pos_ < sizeof(T)) {
            fail(std::string("truncated (need ") + what + ")");
            return v;
        }
        __builtin_memcpy(&v, data_ + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::string section_;
    bool failed_ = false;
    CkptError error_;
};

/** One named, CRC-guarded section of a checkpoint payload. */
struct Section
{
    std::string name;
    std::vector<std::uint8_t> body;
};

/** Frame a section list into a complete file image (header + CRCs). */
std::vector<std::uint8_t>
encodeFile(const std::vector<Section> &sections);

/**
 * Parse and validate a complete file image. Checks magic, version,
 * endianness, payload length and every CRC.
 *
 * @return true on success; on failure @p error names the offending
 *         section ("header" for container-level damage).
 */
bool decodeFile(const std::vector<std::uint8_t> &image,
                std::vector<Section> &sections, CkptError &error);

/**
 * Write @p image to @p path atomically: the bytes go to "<path>.tmp"
 * and are renamed over the target only after a successful write, so a
 * crash mid-write can never leave a torn file under the real name.
 *
 * @return true on success; on failure @p error describes the I/O step.
 */
bool writeFileAtomic(const std::string &path,
                     const std::vector<std::uint8_t> &image,
                     CkptError &error);

/** Read a whole file into memory. */
bool readFile(const std::string &path, std::vector<std::uint8_t> &image,
              CkptError &error);

/** Serialize a PRNG stream at its exact position. */
void putRng(Writer &w, const Rng &rng);

/** Restore a PRNG stream persisted with putRng(). */
void getRng(Reader &r, Rng &rng);

} // namespace aqsim::ckpt

#endif // AQSIM_CKPT_CKPT_IO_HH
