#include "ckpt/checkpoint.hh"

#include "core/synchronizer.hh"
#include "engine/cluster.hh"

namespace aqsim::ckpt
{

const char *const sectionMeta = "meta";
const char *const sectionSync = "sync";
const char *const sectionNodes = "nodes";
const char *const sectionMpi = "mpi";
const char *const sectionNet = "net";
const char *const sectionFault = "fault";
const char *const sectionWorkload = "workload";
const char *const sectionEngine = "engine";

std::uint64_t
sectionsHash(const std::vector<Section> &sections)
{
    std::uint64_t h = fnv1a(nullptr, 0);
    for (const Section &s : sections)
        h = fnv1a(s.body.data(), s.body.size(), h);
    return h;
}

namespace
{

void
putFaultWindows(Writer &w, const engine::ClusterParams &params)
{
    const auto &f = params.faults;
    w.u32(static_cast<std::uint32_t>(f.linkDown.size()));
    for (const auto &win : f.linkDown) {
        w.u32(win.a);
        w.u32(win.b);
        w.u64(win.from);
        w.u64(win.to);
    }
    auto put_node_windows = [&w](const auto &windows) {
        w.u32(static_cast<std::uint32_t>(windows.size()));
        for (const auto &win : windows) {
            w.u32(win.node);
            w.u64(win.from);
            w.u64(win.to);
        }
    };
    put_node_windows(f.nodeCrash);
    put_node_windows(f.nodePause);
    w.u32(static_cast<std::uint32_t>(f.lossBursts.size()));
    for (const auto &b : f.lossBursts) {
        w.u64(b.from);
        w.u64(b.to);
        w.f64(b.rate);
    }
}

} // namespace

const std::vector<std::uint8_t> *
CheckpointImage::find(const std::string &name) const
{
    for (const Section &s : sections)
        if (s.name == name)
            return &s.body;
    return nullptr;
}

std::uint64_t
configFingerprint(const engine::ClusterParams &params,
                  const std::string &policy_name,
                  const std::string &workload_name)
{
    Writer w;
    w.u64(params.numNodes);
    w.u64(params.seed);

    const auto &nic = params.network.nic;
    w.u64(nic.txLatency);
    w.u64(nic.rxLatency);
    w.f64(nic.bytesPerNs);
    w.u32(nic.mtu);
    w.u64(nic.txOverhead);
    w.boolean(params.network.switchModel != nullptr);

    w.f64(params.cpu.opsPerNs);
    w.u32(static_cast<std::uint32_t>(params.cpuSpeedFactors.size()));
    for (double f : params.cpuSpeedFactors)
        w.f64(f);

    const auto &m = params.mpiParams;
    w.u64(m.eagerThreshold);
    w.u64(m.ackWindowBytes);
    w.u64(m.sendOverhead);
    w.u64(m.recvOverhead);
    w.f64(m.copyBytesPerNs);
    w.u32(m.frameOverhead);
    w.u32(m.ctrlFrameBytes);
    w.boolean(m.reliable);
    w.u64(m.retryTimeout);
    w.f64(m.retryBackoff);
    w.u32(m.maxRetries);

    w.boolean(params.samplingCpu);
    w.f64(params.sampling.detailFraction);
    w.f64(params.sampling.fastForwardCost);
    w.f64(params.sampling.timingNoise);

    const auto &f = params.faults;
    w.f64(f.dropRate);
    w.f64(f.duplicateRate);
    w.f64(f.corruptRate);
    w.f64(f.jitterRate);
    w.u64(f.maxJitterTicks);
    putFaultWindows(w, params);

    w.str(policy_name);
    w.str(workload_name);
    return w.hash();
}

CheckpointImage
buildImage(const engine::Cluster &cluster, const core::Synchronizer &sync,
           std::uint64_t config_hash, const std::string &engine_name,
           const std::vector<std::uint8_t> &engine_state)
{
    CheckpointImage image;
    image.quantumIndex = sync.numQuanta();
    image.quantumStart = sync.quantumStart();
    image.quantumEnd = sync.quantumEnd();
    image.configHash = config_hash;
    image.engine = engine_name;

    auto add = [&image](const char *name, auto &&fill) {
        Writer w;
        fill(w);
        image.sections.push_back(Section{name, w.buffer()});
    };
    add(sectionSync, [&](Writer &w) { sync.serialize(w); });
    add(sectionNodes, [&](Writer &w) { cluster.serializeNodes(w); });
    add(sectionMpi, [&](Writer &w) { cluster.serializeMpi(w); });
    add(sectionNet, [&](Writer &w) { cluster.serializeNet(w); });
    add(sectionFault, [&](Writer &w) { cluster.serializeFault(w); });
    add(sectionWorkload,
        [&](Writer &w) { cluster.serializeWorkload(w); });
    if (!engine_state.empty())
        image.sections.push_back(Section{sectionEngine, engine_state});

    image.stateHash = sectionsHash(image.sections);
    return image;
}

std::vector<std::uint8_t>
encodeImage(const CheckpointImage &image)
{
    Writer meta;
    meta.u64(image.quantumIndex);
    meta.u64(image.quantumStart);
    meta.u64(image.quantumEnd);
    meta.u64(image.configHash);
    meta.u64(image.stateHash);
    meta.str(image.engine);

    std::vector<Section> sections;
    sections.reserve(image.sections.size() + 1);
    sections.push_back(Section{sectionMeta, meta.buffer()});
    for (const Section &s : image.sections)
        sections.push_back(s);
    return encodeFile(sections);
}

bool
decodeImage(const std::vector<std::uint8_t> &file_image,
            CheckpointImage &image, CkptError &error)
{
    std::vector<Section> sections;
    if (!decodeFile(file_image, sections, error))
        return false;
    if (sections.empty() || sections.front().name != sectionMeta) {
        error = {sectionMeta, "first section is not \"meta\""};
        return false;
    }

    Reader meta(sections.front().body, sectionMeta);
    image.quantumIndex = meta.u64();
    image.quantumStart = meta.u64();
    image.quantumEnd = meta.u64();
    image.configHash = meta.u64();
    image.stateHash = meta.u64();
    image.engine = meta.str();
    if (!meta.ok()) {
        error = meta.error();
        return false;
    }

    image.sections.assign(sections.begin() + 1, sections.end());
    const std::uint64_t actual = sectionsHash(image.sections);
    if (actual != image.stateHash) {
        error = {sectionMeta,
                 "state hash mismatch (meta promises another "
                 "section set than the file holds)"};
        return false;
    }
    return true;
}

bool
compareImages(const CheckpointImage &golden,
              const CheckpointImage &replayed, CkptError &error)
{
    if (golden.quantumIndex != replayed.quantumIndex) {
        error = {sectionMeta, "quantum index differs"};
        return false;
    }
    if (golden.configHash != replayed.configHash) {
        error = {sectionMeta, "config fingerprint differs"};
        return false;
    }
    for (const Section &g : golden.sections) {
        const auto *body = replayed.find(g.name);
        if (!body) {
            error = {g.name, "section missing from replayed state"};
            return false;
        }
        if (*body != g.body) {
            error = {g.name,
                     "replayed state diverges from checkpoint ("
                     + std::to_string(g.body.size()) + " vs "
                     + std::to_string(body->size()) + " bytes)"};
            return false;
        }
    }
    return true;
}

} // namespace aqsim::ckpt
