/**
 * @file
 * Whole-cluster checkpoint images taken at quantum boundaries.
 *
 * A quantum boundary is the one point where the cluster state is a
 * consistent cut: every frame injected during the quantum has been
 * placed into its destination event queue, both engines have drained
 * their delivery paths, and no worker thread holds private state (the
 * ThreadedEngine coordinator takes the snapshot alone). A
 * CheckpointImage captures the architectural state of every layer at
 * that cut — node clocks and event structures, MPI protocol state,
 * network counters and switch occupancy, fault-injector PRNG
 * positions, workload PRNG positions, and the adaptive-quantum policy
 * state — each in its own named, CRC-guarded section.
 *
 * Guest programs are C++20 coroutines whose frames are code, not
 * data, so restore works by deterministic replay: the run is re-executed
 * from quantum 0 and, at the checkpointed quantum, the live state is
 * re-serialized and compared section by section against the image.
 * Any divergence fails loudly, naming the diverging section (see
 * docs/checkpoint-restore.md).
 */

#ifndef AQSIM_CKPT_CHECKPOINT_HH
#define AQSIM_CKPT_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "ckpt/ckpt_io.hh"

namespace aqsim::core
{
class Synchronizer;
} // namespace aqsim::core

namespace aqsim::engine
{
class Cluster;
struct ClusterParams;
} // namespace aqsim::engine

namespace aqsim::ckpt
{

/** Checkpoint section names, in file order. */
extern const char *const sectionMeta;
extern const char *const sectionSync;
extern const char *const sectionNodes;
extern const char *const sectionMpi;
extern const char *const sectionNet;
extern const char *const sectionFault;
extern const char *const sectionWorkload;
extern const char *const sectionEngine;

/** A decoded (or freshly built) whole-cluster checkpoint. */
struct CheckpointImage
{
    /** Quanta completed when the snapshot was taken. */
    std::uint64_t quantumIndex = 0;
    /** Simulated window [start, end) of the *next* quantum. */
    Tick quantumStart = 0;
    Tick quantumEnd = 0;
    /** Fingerprint of the run configuration (must match to restore). */
    std::uint64_t configHash = 0;
    /** FNV-1a over every state-section body, in file order. */
    std::uint64_t stateHash = 0;
    /** Engine that produced the snapshot. */
    std::string engine;

    /** State sections (everything except "meta"). */
    std::vector<Section> sections;

    /** Look up a state section body by name (nullptr if absent). */
    const std::vector<std::uint8_t> *find(const std::string &name) const;
};

/**
 * Chain-hash every state-section body in order — the meta stateHash.
 * Public so an engine assembling an image from gathered section
 * bodies (DistributedEngine splices per-peer ranges) produces the
 * same fingerprint buildImage would.
 */
std::uint64_t sectionsHash(const std::vector<Section> &sections);

/**
 * Fingerprint the run configuration: cluster parameters, policy name
 * and workload name. Restoring a checkpoint into a different
 * configuration is rejected up front with this hash.
 */
std::uint64_t configFingerprint(const engine::ClusterParams &params,
                                const std::string &policy_name,
                                const std::string &workload_name);

/**
 * Snapshot the live cluster + synchronizer into an image. Must be
 * called at a quantum boundary, after Synchronizer::completeQuantum().
 *
 * @param engine_state optional extra section body with engine-private
 *        deterministic state (empty = section omitted)
 */
CheckpointImage buildImage(const engine::Cluster &cluster,
                           const core::Synchronizer &sync,
                           std::uint64_t config_hash,
                           const std::string &engine_name,
                           const std::vector<std::uint8_t> &engine_state);

/** Frame an image into a complete checkpoint file byte image. */
std::vector<std::uint8_t> encodeImage(const CheckpointImage &image);

/**
 * Parse + validate a checkpoint file byte image. On failure @p error
 * names the offending section. Also recomputes and cross-checks the
 * meta stateHash against the section bodies.
 */
bool decodeImage(const std::vector<std::uint8_t> &file_image,
                 CheckpointImage &image, CkptError &error);

/**
 * Compare a replayed snapshot against the golden image section by
 * section. @return true when bit-identical; otherwise @p error names
 * the first diverging section.
 */
bool compareImages(const CheckpointImage &golden,
                   const CheckpointImage &replayed, CkptError &error);

} // namespace aqsim::ckpt

#endif // AQSIM_CKPT_CHECKPOINT_HH
