/**
 * @file
 * Writing your own workload: a 2-D Jacobi stencil solver skeleton.
 *
 * This example shows the full downstream-user path: subclass
 * workloads::Workload, write the per-rank program as a coroutine over
 * the AppContext API (compute + point-to-point + collectives), then
 * compare synchronization policies on it with the standard engines.
 *
 *   $ ./custom_workload [--nodes N] [--iters K]
 */

#include <cstdio>

#include "aqsim.hh"
#include "workloads/nas_common.hh"

using namespace aqsim;

namespace
{

/**
 * Iterative 2-D Jacobi solver: every sweep smooths the local tile,
 * exchanges halo rows/columns with the 4-neighborhood, and every few
 * sweeps reduces the global residual. A textbook bulk-synchronous
 * pattern: compute phases separated by short communication bursts —
 * exactly the shape the adaptive quantum exploits.
 */
class JacobiStencil : public workloads::Workload
{
  public:
    struct Params
    {
        std::size_t gridDim = 4096; // global N x N grid
        std::size_t sweeps = 20;
        std::size_t residualEvery = 5;
        double opsPerPoint = 6.0; // 5-point stencil
        double jitterSigma = 0.02;
    };

    JacobiStencil(std::size_t num_ranks, Params params)
        : numRanks_(num_ranks), params_(params)
    {}

    std::string name() const override { return "jacobi"; }

    MetricKind
    metricKind() const override
    {
        return MetricKind::RateMops;
    }

    double
    totalOps() const override
    {
        return static_cast<double>(params_.sweeps) *
               static_cast<double>(params_.gridDim) *
               static_cast<double>(params_.gridDim) *
               params_.opsPerPoint;
    }

    sim::Process
    program(workloads::AppContext &ctx) override
    {
        const std::size_t n = ctx.numRanks();
        const auto grid = workloads::factor2(n);
        const std::array<std::size_t, 3> dims{grid[0], grid[1], 1};
        const Rank r = ctx.rank();
        constexpr int tag_halo = 77;

        const double tile_points =
            static_cast<double>(params_.gridDim) *
            static_cast<double>(params_.gridDim) /
            static_cast<double>(n);
        // Halo size: one row/column of doubles along each edge.
        const auto halo_bytes = static_cast<std::uint64_t>(
            8.0 * static_cast<double>(params_.gridDim) /
            static_cast<double>(grid[0]));

        for (std::size_t sweep = 0; sweep < params_.sweeps; ++sweep) {
            co_await ctx.compute(ctx.jitter(
                tile_points * params_.opsPerPoint,
                params_.jitterSigma));

            // Exchange halos with up to four neighbors, forked so
            // all four directions stream concurrently.
            std::vector<sim::Process> sends;
            std::vector<Rank> from;
            for (std::size_t axis = 0; axis < 2; ++axis) {
                for (int dir : {+1, -1}) {
                    const auto nb =
                        workloads::gridNeighbor(r, dims, axis, dir);
                    if (nb < 0)
                        continue;
                    sends.push_back(ctx.comm().send(
                        static_cast<Rank>(nb), tag_halo, halo_bytes));
                    sends.back().start();
                    from.push_back(static_cast<Rank>(nb));
                }
            }
            for (Rank src : from)
                co_await ctx.comm().recv(static_cast<int>(src),
                                         tag_halo);
            for (auto &s : sends)
                co_await std::move(s);

            if ((sweep + 1) % params_.residualEvery == 0)
                co_await mpi::allreduce(ctx.comm(), 8);
        }
    }

  private:
    std::size_t numRanks_;
    Params params_;
};

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv, {"nodes", "iters"});
    const auto nodes =
        static_cast<std::size_t>(args.getInt("nodes", 8));
    JacobiStencil::Params app;
    app.sweeps = static_cast<std::size_t>(args.getInt("iters", 20));

    std::printf("2-D Jacobi stencil, %zux%zu grid, %zu sweeps, "
                "%zu nodes\n\n",
                app.gridDim, app.gridDim, app.sweeps, nodes);
    std::printf("%-26s %12s %12s %14s\n", "policy", "MOPS",
                "error", "host time(s)");

    auto params = harness::defaultCluster(nodes);
    double gt_mops = 0.0;
    for (const char *spec :
         {"fixed:1us", "fixed:100us", "fixed:1000us",
          "dyn:1.05:0.02:1us:1000us"}) {
        JacobiStencil workload(nodes, app);
        auto policy = core::parsePolicy(spec);
        engine::SequentialEngine engine;
        auto result = engine.run(params, workload, *policy);
        if (gt_mops == 0.0)
            gt_mops = result.metric;
        std::printf("%-26s %12.0f %11.2f%% %14.3f\n",
                    policy->name().c_str(), result.metric,
                    100.0 * std::abs(result.metric - gt_mops) /
                        gt_mops,
                    result.hostSeconds());
    }
    std::printf("\nThe stencil's bulk-synchronous phases let the "
                "adaptive quantum grow between halo exchanges.\n");
    return 0;
}
