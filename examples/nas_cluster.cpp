/**
 * @file
 * Run one NAS skeleton benchmark on a simulated cluster and compare a
 * chosen synchronization policy against the 1 us ground truth.
 *
 *   $ ./nas_cluster --workload nas.is --nodes 8 \
 *                   --policy dyn:1.03:0.02:1us:1000us [--scale S]
 */

#include <cstdio>

#include "base/args.hh"
#include "harness/experiment.hh"

using namespace aqsim;

int
main(int argc, char **argv)
{
    Args args(argc, argv,
              {"workload", "nodes", "policy", "scale", "seed"});
    const std::string workload =
        args.getString("workload", "nas.cg");
    const auto nodes =
        static_cast<std::size_t>(args.getInt("nodes", 8));
    const std::string policy =
        args.getString("policy", "dyn:1.03:0.02:1us:1000us");
    const double scale = args.getDouble("scale", 1.0);
    const auto seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));

    harness::Harness harness(scale, seed);

    std::printf("running %s on %zu nodes (scale %.2f)...\n",
                workload.c_str(), nodes, scale);
    const auto &gt = harness.groundTruth(workload, nodes);
    std::printf("  ground truth : %s\n", gt.summary().c_str());

    auto run = harness.run(workload, nodes, policy);
    std::printf("  %-13s: %s\n", "this policy", run.summary().c_str());

    std::printf("\nresults vs. ground truth:\n");
    std::printf("  benchmark metric   : %.4g vs %.4g %s\n", run.metric,
                gt.metric,
                run.workload == "namd" ? "seconds" : "MOPS");
    std::printf("  accuracy error     : %.3f%%\n",
                100.0 * harness.error(run));
    std::printf("  simulation speedup : %.1fx\n", harness.speedup(run));
    std::printf("  sim-time ratio     : %.3f\n",
                engine::simTimeRatio(run, gt));
    std::printf("  mean quantum       : %.1f us\n",
                run.meanQuantumTicks * 1e-3);
    std::printf("  stragglers         : %llu of %llu packets "
                "(%.2f%%), %llu snapped to a quantum boundary\n",
                static_cast<unsigned long long>(run.stragglers),
                static_cast<unsigned long long>(run.packets),
                100.0 * run.stragglerFraction(),
                static_cast<unsigned long long>(
                    run.nextQuantumDeliveries));
    return 0;
}
