/**
 * @file
 * NAMD-style molecular dynamics on a simulated cluster, with the
 * quantum evolution traced over time: watch Algorithm 1 "drive over
 * speed bumps" — the quantum collapsing on every per-timestep traffic
 * burst and growing back through the force-computation phases.
 *
 *   $ ./namd_cluster --nodes 8 [--steps N] [--scale S]
 */

#include <cstdio>

#include "base/args.hh"
#include "core/quantum_policy.hh"
#include "engine/sequential_engine.hh"
#include "harness/experiment.hh"
#include "trace/ascii_plot.hh"
#include "trace/timeline.hh"
#include "workloads/namd.hh"

using namespace aqsim;

int
main(int argc, char **argv)
{
    Args args(argc, argv, {"nodes", "steps", "scale"});
    const auto nodes =
        static_cast<std::size_t>(args.getInt("nodes", 8));
    const double scale = args.getDouble("scale", 0.5);

    workloads::Namd::Params params;
    if (args.has("steps"))
        params.steps =
            static_cast<std::size_t>(args.getInt("steps", 15));
    workloads::Namd workload(nodes, scale, params);

    auto cluster_params = harness::defaultCluster(nodes);
    auto policy = core::parsePolicy("dyn:1.05:0.02:1us:1000us");
    engine::EngineOptions options;
    options.recordTimeline = true;
    engine::SequentialEngine engine(options);

    std::printf("NAMD skeleton (apoa1-shaped), %zu nodes, %zu steps\n",
                nodes, params.steps);
    auto result = engine.run(cluster_params, workload, *policy);
    std::printf("%s\n", result.summary().c_str());

    // Quantum length over time: the "speed bump" dynamics.
    auto series = trace::quantumOverTime(
        result.timeline, std::max<Tick>(result.simTicks / 70, 1));
    std::vector<double> xs, ys;
    for (const auto &pt : series) {
        xs.push_back(static_cast<double>(pt.simTime) * 1e-6);
        ys.push_back(pt.value * 1e-3); // us
    }
    std::printf("\nQuantum length over time (us, log scale) — each "
                "collapse is a per-timestep proxy-message burst:\n%s",
                trace::renderLogSeries(xs, ys, 76, 12, "quantum (us)")
                    .c_str());

    std::printf("\nmean quantum %.1f us; %llu quanta; %llu/%llu "
                "stragglers\n",
                result.meanQuantumTicks * 1e-3,
                static_cast<unsigned long long>(result.quanta),
                static_cast<unsigned long long>(result.stragglers),
                static_cast<unsigned long long>(result.packets));
    return 0;
}
