/**
 * @file
 * Quickstart: build a 2-node cluster, run a ping-pong under three
 * synchronization policies, and see the speed/accuracy tradeoff.
 *
 *   $ ./quickstart [--rounds N] [--bytes B]
 *
 * This walks through the core public API: workloads, policies,
 * cluster parameters and the SequentialEngine.
 */

#include <cstdio>

#include "base/args.hh"
#include "core/quantum_policy.hh"
#include "engine/sequential_engine.hh"
#include "harness/experiment.hh"
#include "workloads/synthetic.hh"

using namespace aqsim;

int
main(int argc, char **argv)
{
    Args args(argc, argv, {"rounds", "bytes"});

    // 1. Describe the guest application: a classic ping-pong.
    workloads::PingPong::Params app;
    app.rounds = static_cast<std::size_t>(args.getInt("rounds", 200));
    app.bytes = static_cast<std::uint64_t>(args.getInt("bytes", 1024));

    // 2. Describe the cluster: the paper's network (10 GB/s NICs,
    //    1 us minimum latency, perfect switch, 9000 B jumbo frames).
    auto cluster = harness::defaultCluster(/*num_nodes=*/2);

    std::printf("2-node ping-pong, %zu rounds of %llu bytes\n\n",
                app.rounds,
                static_cast<unsigned long long>(app.bytes));
    std::printf("%-26s %14s %14s %12s\n", "policy", "roundtrip(us)",
                "host time(s)", "stragglers");

    // 3. Run it under several synchronization policies.
    double baseline_rtt = 0.0;
    for (const char *spec :
         {"fixed:1us",                 // deterministic ground truth
          "fixed:100us",               // coarse fixed quantum
          "dyn:1.05:0.02:1us:1000us"}) // the paper's Algorithm 1
    {
        workloads::PingPong workload(2, 1.0, app);
        auto policy = core::parsePolicy(spec);
        engine::SequentialEngine engine;
        auto result = engine.run(cluster, workload, *policy);

        const double rtt = workload.meanRoundtripTicks() * 1e-3;
        if (baseline_rtt == 0.0)
            baseline_rtt = rtt;
        std::printf("%-26s %14.2f %14.3f %12llu\n",
                    policy->name().c_str(), rtt,
                    result.hostSeconds(),
                    static_cast<unsigned long long>(
                        result.stragglers));
    }

    std::printf(
        "\nThe 1us quantum equals the minimum network latency, so it"
        "\nis deterministic but slow. The 100us quantum is fast but"
        "\ninflates the measured roundtrip (stragglers). The adaptive"
        "\nquantum collapses on traffic and recovers the roundtrip"
        "\nnear ground-truth accuracy.\n");
    return 0;
}
