/**
 * @file
 * Visualize a workload's network traffic and quantum dynamics: the
 * traffic-over-time map (paper Fig. 9 left) and, for adaptive runs,
 * the quantum-length evolution. Optionally dumps the packet trace as
 * CSV for external plotting.
 *
 *   $ ./traffic_viz --workload nas.is --nodes 16 \
 *                   [--policy dyn:1.03:0.02:1us:1000us]
 *                   [--trace-csv out.csv]
 */

#include <cstdio>
#include <fstream>

#include "base/args.hh"
#include "harness/experiment.hh"
#include "trace/ascii_plot.hh"
#include "trace/timeline.hh"

using namespace aqsim;

int
main(int argc, char **argv)
{
    Args args(argc, argv,
              {"workload", "nodes", "policy", "scale", "trace-csv"});
    harness::ExperimentConfig config;
    config.workload = args.getString("workload", "nas.is");
    config.numNodes =
        static_cast<std::size_t>(args.getInt("nodes", 16));
    config.policySpec =
        args.getString("policy", "dyn:1.03:0.02:1us:1000us");
    config.scale = args.getDouble("scale", 0.3);
    config.recordTrace = true;
    config.recordTimeline = true;

    std::printf("%s on %zu nodes under %s...\n",
                config.workload.c_str(), config.numNodes,
                config.policySpec.c_str());
    auto out = harness::runExperiment(config);
    std::printf("%s\n\n", out.result.summary().c_str());

    std::printf("Traffic over time (rows = nodes):\n%s\n",
                trace::renderTrafficMap(out.trace.records(),
                                        config.numNodes, 100)
                    .c_str());

    auto series = trace::quantumOverTime(
        out.result.timeline,
        std::max<Tick>(out.result.simTicks / 70, 1));
    std::vector<double> xs, ys;
    for (const auto &pt : series) {
        xs.push_back(static_cast<double>(pt.simTime) * 1e-6);
        ys.push_back(pt.value * 1e-3);
    }
    std::printf("Quantum length over time (us, log scale):\n%s",
                trace::renderLogSeries(xs, ys, 76, 10, "quantum (us)")
                    .c_str());

    const std::string csv_path = args.getString("trace-csv", "");
    if (!csv_path.empty()) {
        std::ofstream file(csv_path);
        if (!file)
            fatal("cannot open '%s' for writing", csv_path.c_str());
        out.trace.dumpCsv(file);
        std::printf("\npacket trace written to %s (%zu records)\n",
                    csv_path.c_str(), out.trace.size());
    }
    return 0;
}
