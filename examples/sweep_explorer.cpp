/**
 * @file
 * Explore the speed/accuracy tradeoff space for a workload: sweep
 * fixed quanta and adaptive settings, print every point plus the
 * Pareto front — an interactive version of the paper's Figure 8.
 *
 *   $ ./sweep_explorer --workload nas.cg --nodes 8 [--scale S]
 */

#include <cstdio>
#include <iostream>

#include "base/args.hh"
#include "harness/experiment.hh"
#include "harness/pareto.hh"
#include "harness/report.hh"

using namespace aqsim;
using harness::Table;

int
main(int argc, char **argv)
{
    Args args(argc, argv, {"workload", "nodes", "scale", "csv"});
    const std::string workload =
        args.getString("workload", "nas.cg");
    const auto nodes =
        static_cast<std::size_t>(args.getInt("nodes", 8));
    const double scale = args.getDouble("scale", 0.5);
    const bool csv = args.getBool("csv", false);

    harness::Harness harness(scale, 1);

    const char *specs[] = {
        "fixed:2us",   "fixed:5us",   "fixed:10us",  "fixed:30us",
        "fixed:100us", "fixed:300us", "fixed:1000us",
        "dyn:1.02:0.02:1us:1000us", "dyn:1.03:0.02:1us:1000us",
        "dyn:1.05:0.02:1us:1000us", "dyn:1.10:0.02:1us:1000us",
        "dyn:1.05:0.1:1us:1000us",  "dyn:1.05:0.02:1us:100us",
    };

    std::vector<harness::TradeoffPoint> points;
    for (const char *spec : specs) {
        auto run = harness.run(workload, nodes, spec);
        points.push_back({run.policy, harness.error(run),
                          harness.speedup(run)});
    }

    Table table({"policy", "error", "speedup", "pareto"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        table.addRow({points[i].label,
                      harness::fmtPercent(points[i].error),
                      harness::fmtSpeedup(points[i].speedup),
                      harness::isParetoOptimal(points, i) ? "*" : ""});
    }
    if (csv) {
        table.printCsv(std::cout);
    } else {
        std::printf("%s on %zu nodes (scale %.2f): tradeoff sweep\n\n",
                    workload.c_str(), nodes, scale);
        table.print(std::cout);
        std::printf("\n* = Pareto optimal (no config is both more "
                    "accurate and faster)\n");
    }
    return 0;
}
